"""Serving-tier chaos harness: hostile clients against a live server.

The request-lifecycle machinery (deadlines, wire-level cancellation,
disconnect reaping, the watchdog, adaptive backpressure — see
``docs/SERVING.md``) makes promises that only hold up under *hostile*
traffic, so this module builds exactly that and checks the wreckage:

* :class:`WallSource` — a source that sleeps **wall-clock** time per
  dial and counts its dials, so a cancelled query's dial count can be
  asserted frozen (the run really stopped dialing mid-wave, it did not
  just stop being awaited);
* slow-loris clients that trickle a valid request a few bytes at a time
  and never finish the line;
* clients that send a real query and drop the connection mid-request;
* malformed/oversized/invalid-UTF-8 frame writers;
* concurrent cancel storms against one in-flight request;
* :class:`WallSource` outage flips mid-run (the serving layer must
  surface partials or typed errors, never hangs).

:func:`run_serving_chaos` drives all of it for a seeded number of
rounds and returns a :class:`ServingChaosReport` whose invariants the
chaos test (``tests/test_serving_chaos.py``) and the CI serving-chaos
job assert: zero leaked worker threads, zero stuck tickets, bounded
response accounting (every tracked request reaches exactly one terminal
status), and accurate cancelled/deadline_exceeded/partial counters.

Run it standalone::

    PYTHONPATH=src python -m repro.workloads.serving_chaos --rounds 4
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.mediator import Mediator
from repro.domains.base import simple_domain
from repro.errors import ReproError, SourceUnavailableError
from repro.serving.admission import AdmissionPolicy
from repro.serving.client import ServingClient
from repro.serving.protocol import MAX_LINE_BYTES, encode_message
from repro.serving.server import MediatorServer, ServingConfig

_SITES = ("cornell", "bucknell", "maryland")

#: answers produced per dial (kept small: chain depth drives dial count)
WALL_FANOUT = 2


@dataclass
class WallSource:
    """One relation's source that burns real wall time per dial."""

    name: str
    relation: int
    wall_ms: float = 0.0
    down: bool = False
    _calls: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def calls(self) -> int:
        with self._lock:
            return self._calls

    def __call__(self, value: object) -> object:
        with self._lock:
            self._calls += 1
        if self.down:
            raise SourceUnavailableError(self.name, site=_SITES[self.relation % len(_SITES)])
        if self.wall_ms > 0.0:
            time.sleep(self.wall_ms / 1000.0)
        return [f"{value}/r{self.relation}.{j}" for j in range(WALL_FANOUT)]


@dataclass
class ServingChaosTestbed:
    """A wall-clock-slow mediator plus handles on every source."""

    mediator: Mediator
    sources: dict[str, WallSource]
    relations: int

    def total_dials(self) -> int:
        return sum(source.calls for source in self.sources.values())

    def set_wall_ms(self, wall_ms: float) -> None:
        for source in self.sources.values():
            source.wall_ms = wall_ms

    def set_down(self, names: frozenset[str]) -> None:
        for name, source in self.sources.items():
            source.down = name in names

    def heal(self) -> None:
        self.set_down(frozenset())

    def chain_query(
        self, depth: Optional[int] = None, key: str = "s"
    ) -> str:
        """The depth-``n`` chain query (each hop multiplies dials).

        Pass a fresh ``key`` per request to defeat the plan/sub-plan
        caches — a cache hit completes instantly and leaves a cancel or
        deadline nothing to interrupt."""
        depth = self.relations if depth is None else depth
        return f"?- chain{depth}('{key}', Z)."


def _wrap(source: WallSource):
    # simple_domain reads arity off __code__.co_argcount, so the source
    # object must be wrapped in a plain single-argument function
    def call(value: object) -> object:
        return source(value)

    return call


def build_serving_testbed(
    relations: int = 3,
    wall_ms: float = 0.0,
    jobs: int = 1,
    repair: bool = True,
) -> ServingChaosTestbed:
    """Wire ``relations`` wall-clock sources and chain rules over them.

    ``chainK`` joins the first K relations, so dial counts (and wall
    time, at ``wall_ms`` per dial) grow geometrically with depth —
    deep chains are what give a cancel something to interrupt.
    """
    mediator = Mediator(repair=repair)
    sources: dict[str, WallSource] = {}
    rules: list[str] = []
    for i in range(relations):
        name = f"w{i}"
        source = WallSource(name=name, relation=i, wall_ms=wall_ms)
        sources[name] = source
        mediator.register_domain(
            simple_domain(name, {f"r{i}": _wrap(source)}),
            site=_SITES[i % len(_SITES)],
            seed=11 + i,
        )
        rules.append(f"hop{i}(A, B) :- in(B, {name}:r{i}(A)).")
    for depth in range(1, relations + 1):
        body = " & ".join(
            f"hop{i}(V{i}, V{i + 1})" for i in range(depth)
        )
        rules.append(f"chain{depth}(V0, V{depth}) :- {body}.")
    mediator.load_program("\n".join(rules))
    if jobs > 1:
        mediator.set_jobs(jobs)
    return ServingChaosTestbed(
        mediator=mediator, sources=sources, relations=relations
    )


# -- hostile client behaviours ------------------------------------------------


def slow_loris(
    host: str, port: int, *, byte_delay_s: float = 0.01, max_bytes: int = 64
) -> None:
    """Trickle a valid-looking request a byte at a time, then vanish
    without ever completing the line.  The server must neither block a
    reader forever nor leak the connection."""
    payload = encode_message(
        {"op": "query", "query": "?- chain1('s', Z).", "tenant": "loris"}
    )[:-1]  # withhold the newline: the request must never parse
    try:
        with socket.create_connection((host, port), timeout=5.0) as sock:
            for byte in payload[:max_bytes]:
                sock.sendall(bytes([byte]))
                time.sleep(byte_delay_s)
    except OSError:
        pass  # the server hanging up on us is an acceptable outcome


def disconnect_mid_request(
    host: str, port: int, query: str, *, linger_s: float = 0.05
) -> None:
    """Send a real query, give the server a moment to start it, then
    drop the connection.  The reaper must cancel the orphaned work."""
    try:
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(
                encode_message(
                    {"op": "query", "query": query, "tenant": "ghost"}
                )
            )
            time.sleep(linger_s)
    except OSError:
        pass


def send_malformed_frames(host: str, port: int) -> list[str]:
    """Throw broken frames at the server; returns response statuses.

    Each frame must come back as a typed ``error`` response (or a clean
    hangup for the oversized line) — never a crash, never silence."""
    frames = [
        b"this is not json\n",
        b'{"op": "query"\n',  # truncated JSON
        b"\xff\xfe garbage \xff\n",  # invalid UTF-8
        b'["array", "not", "object"]\n',
        b'{"op": "query", "query": "' + b"x" * (MAX_LINE_BYTES + 16) + b'"}\n',
    ]
    statuses: list[str] = []
    for frame in frames:
        try:
            with socket.create_connection((host, port), timeout=5.0) as sock:
                sock.sendall(frame)
                sock.settimeout(5.0)
                data = b""
                while b"\n" not in data:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                if data:
                    response = json.loads(data.split(b"\n", 1)[0])
                    statuses.append(str(response.get("status")))
                else:
                    statuses.append("closed")
        except (OSError, ValueError):
            statuses.append("closed")
    return statuses


def cancel_storm(
    client: ServingClient, target_id: str, *, cancels: int = 8
) -> int:
    """Fire ``cancels`` concurrent cancel ops at one request; returns
    how many acks arrived (all must, and the target must complete with
    exactly one terminal response)."""
    acks = [0]
    lock = threading.Lock()

    def _one() -> None:
        try:
            response = client.cancel(target_id)
            if response.get("status") == "ok":
                with lock:
                    acks[0] += 1
        except ReproError:
            pass

    threads = [
        threading.Thread(target=_one, daemon=True) for _ in range(cancels)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
    return acks[0]


# -- the orchestrated chaos run ----------------------------------------------


@dataclass
class ServingChaosReport:
    """What one chaos run produced; the asserted invariants live here."""

    rounds: int = 0
    sent: int = 0
    ok: int = 0
    partial: int = 0
    rejected: int = 0
    cancelled: int = 0
    deadline_exceeded: int = 0
    errors: int = 0
    cancel_acks: int = 0
    malformed_statuses: list[str] = field(default_factory=list)
    #: dials counted right at a cancel vs. after a settle grace — equal
    #: modulo in-progress dials means the run really stopped mid-wave
    dials_at_cancel: int = 0
    dials_after_settle: int = 0
    threads_before: int = 0
    threads_after: int = 0
    stuck_tickets: int = 0
    queue_depth_after: int = 0
    in_flight_after: int = 0
    drain_summary: dict[str, float] = field(default_factory=dict)

    @property
    def leaked_threads(self) -> int:
        return max(0, self.threads_after - self.threads_before)

    @property
    def terminal_total(self) -> int:
        return (
            self.ok
            + self.partial
            + self.rejected
            + self.cancelled
            + self.deadline_exceeded
            + self.errors
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "rounds": self.rounds,
            "sent": self.sent,
            "ok": self.ok,
            "partial": self.partial,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "deadline_exceeded": self.deadline_exceeded,
            "errors": self.errors,
            "cancel_acks": self.cancel_acks,
            "malformed_statuses": self.malformed_statuses,
            "dials_at_cancel": self.dials_at_cancel,
            "dials_after_settle": self.dials_after_settle,
            "leaked_threads": self.leaked_threads,
            "stuck_tickets": self.stuck_tickets,
            "queue_depth_after": self.queue_depth_after,
            "in_flight_after": self.in_flight_after,
            "drain_summary": self.drain_summary,
        }


def _classify(report: ServingChaosReport, response: dict[str, Any]) -> None:
    status = response.get("status")
    if status == "ok":
        report.ok += 1
    elif status == "partial":
        report.partial += 1
    elif status == "rejected":
        report.rejected += 1
    elif status == "cancelled":
        report.cancelled += 1
    elif status == "deadline_exceeded":
        report.deadline_exceeded += 1
    else:
        report.errors += 1


def run_serving_chaos(
    rounds: int = 3,
    *,
    seed: int = 0,
    jobs: int = 1,
    wall_ms: float = 30.0,
    workers: int = 4,
) -> ServingChaosReport:
    """Drive one full hostile run and return the audited report.

    Each round mixes: normal queries (some with tight deadlines), one
    explicit cancel against a slow in-flight chain (with a cancel
    storm), a mid-request disconnect, a slow-loris client, malformed
    frames, and a one-source outage window.
    """
    rng = random.Random(seed)
    keys = iter(f"k{i}" for i in range(1_000_000))
    testbed = build_serving_testbed(
        relations=3, wall_ms=wall_ms, jobs=jobs
    )
    config = ServingConfig(
        workers=workers,
        admission=AdmissionPolicy(max_queue_depth=32, max_tenant_depth=16),
        max_runtime_ms=20_000.0,
    )
    report = ServingChaosReport(rounds=rounds)
    report.threads_before = threading.active_count()
    server = MediatorServer(testbed.mediator, config=config).start()
    host, port = server.address
    try:
        for round_index in range(rounds):
            with ServingClient(host, port, tenant=f"t{round_index % 2}") as client:
                # a) normal traffic, some with deadlines that can't be met
                for _ in range(4):
                    depth = rng.randrange(1, testbed.relations + 1)
                    deadline = (
                        rng.choice([None, None, 5.0, 50.0])
                        if depth > 1
                        else None
                    )
                    report.sent += 1
                    try:
                        response = client.query(
                            testbed.chain_query(depth, key=next(keys)),
                            deadline_ms=deadline,
                            timeout_s=30.0,
                        )
                    except ReproError:
                        response = {"status": "error"}
                    _classify(report, response)
                # b) cancel an in-flight slow chain, with a cancel storm
                report.sent += 1
                target = client.send(
                    {
                        "op": "query",
                        "query": testbed.chain_query(key=next(keys)),
                    }
                )
                time.sleep(wall_ms / 1000.0)  # let it start dialing
                report.cancel_acks += cancel_storm(client, target)
                try:
                    _classify(report, client.wait(target, timeout_s=30.0))
                except ReproError:
                    report.errors += 1
            # c) hostile connections (fresh sockets, outside the client)
            disconnect_mid_request(
                host,
                port,
                testbed.chain_query(key=next(keys)),
                linger_s=wall_ms / 1000.0,
            )
            slow_loris(host, port, byte_delay_s=0.002, max_bytes=32)
            report.malformed_statuses.extend(send_malformed_frames(host, port))
            # d) a one-source outage window: queries surface partials or
            # typed errors, never hangs
            victim = rng.choice(sorted(testbed.sources))
            testbed.set_down(frozenset({victim}))
            with ServingClient(host, port, tenant="outage") as client:
                report.sent += 1
                try:
                    response = client.query(
                        testbed.chain_query(1, key=next(keys)),
                        timeout_s=30.0,
                    )
                except ReproError:
                    response = {"status": "error"}
                _classify(report, response)
            testbed.heal()
        # dedicated dial-freeze probe: cancel one last slow chain, let
        # any in-progress dial finish, then the count must never move
        settle_s = max(0.2, 3.0 * wall_ms / 1000.0)
        with ServingClient(host, port, tenant="freeze") as client:
            report.sent += 1
            target = client.send(
                {"op": "query", "query": testbed.chain_query(key=next(keys))}
            )
            time.sleep(wall_ms / 1000.0)
            report.cancel_acks += cancel_storm(client, target, cancels=4)
            try:
                _classify(report, client.wait(target, timeout_s=30.0))
            except ReproError:
                report.errors += 1
        time.sleep(settle_s)
        report.dials_at_cancel = testbed.total_dials()
        time.sleep(settle_s)
        report.dials_after_settle = testbed.total_dials()
        report.queue_depth_after = server.admission.depth
        report.in_flight_after = server.admission.in_flight
    finally:
        report.drain_summary = server.drain(timeout=30.0)
    report.stuck_tickets = int(report.drain_summary.get("stuck_tickets", 0))
    # give reaped reader/worker threads a beat to unwind before counting
    deadline = time.monotonic() + 5.0
    while (
        threading.active_count() > report.threads_before
        and time.monotonic() < deadline
    ):
        time.sleep(0.05)
    report.threads_after = threading.active_count()
    return report


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--wall-ms", type=float, default=30.0)
    args = parser.parse_args(argv)
    report = run_serving_chaos(
        args.rounds, seed=args.seed, jobs=args.jobs, wall_ms=args.wall_ms
    )
    print(json.dumps(report.to_dict(), indent=2))
    healthy = (
        report.leaked_threads == 0
        and report.stuck_tickets == 0
        and report.queue_depth_after == 0
        and report.in_flight_after == 0
    )
    print(
        f"serving-chaos: leaked_threads={report.leaked_threads}"
        f" stuck_tickets={report.stuck_tickets}"
        f" result={'PASS' if healthy else 'FAIL'}"
    )
    return 0 if healthy else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Deterministic synthetic datasets shaped after the paper's testbed.

The star dataset is *The Rope* (the paper queries Hitchcock's "Rope" in
AVIS).  Object appearance intervals are constructed so the paper's
reported answer cardinalities hold exactly:

* ``actors in 'The Rope'``                → 6 cast tuples (Figure 5, query 1),
* ``objects between frames 4 and 47``     → 19 objects   (Figure 5, query 3),
* ``objects between frames 4 and 127``    → 24 objects   (Figure 5, query 4).
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.mediator import Mediator
from repro.domains.avis.store import AvisDomain, build_video
from repro.domains.relational.engine import RelationalEngine
from repro.domains.spatial.domain import SpatialDomain
from repro.domains.spatial.index import Point
from repro.domains.terrain.domain import TerrainDomain
from repro.domains.terrain.grid import TerrainGrid

#: The six credited roles (cast rows) — Figure 5's "6 tuples".
ROPE_CAST: tuple[tuple[str, str], ...] = (
    ("stewart", "rupert"),
    ("dall", "brandon"),
    ("granger", "phillip"),
    ("chandler", "janet"),
    ("hogan", "kenneth"),
    ("collier", "mrs_atwater"),
)

ROPE_FRAMES = 240


def _rope_objects() -> list[tuple[str, list[tuple[int, int]]]]:
    """Appearance intervals engineered for the paper's cardinalities.

    Groups:

    * 19 objects (6 roles + 13 props) intersect [4, 47];
    * 5 more objects appear only within [48, 127]  → 24 in [4, 127];
    * 4 late objects appear only after frame 128 (in neither interval).
    """
    objects: list[tuple[str, list[tuple[int, int]]]] = []
    # the six roles: on screen early and long
    role_spans = {
        "rupert": [(30, 220)],
        "brandon": [(1, 210)],
        "phillip": [(1, 200)],
        "janet": [(40, 150)],
        "kenneth": [(42, 140)],
        "mrs_atwater": [(45, 160)],
    }
    for role, spans in role_spans.items():
        objects.append((role, spans))
    early_props = [
        "rope", "chest", "candlesticks", "books", "champagne",
        "rope_drawer", "piano", "metronome", "first_edition",
        "cigarette_case", "dining_table", "apartment_door", "skyline",
    ]
    for i, prop in enumerate(early_props):
        # every early prop intersects [4, 47]
        first = 4 + (i % 20)
        last = min(60 + 9 * i, ROPE_FRAMES)
        objects.append((prop, [(first, last)]))
    middle_props = ["hat", "initialed_hatband", "gloves", "manuscript", "telephone"]
    for i, prop in enumerate(middle_props):
        # appear strictly inside (47, 127]
        first = 50 + 12 * i
        last = min(first + 15, 127)
        objects.append((prop, [(first, last)]))
    late_props = ["gun", "window", "siren_crowd", "confession"]
    for i, prop in enumerate(late_props):
        first = 130 + 20 * i
        last = min(first + 30, ROPE_FRAMES)
        objects.append((prop, [(first, last)]))
    return objects


def build_rope_avis(name: str = "video") -> AvisDomain:
    """The AVIS domain loaded with 'The Rope'."""
    avis = AvisDomain(name)
    avis.add_video(build_video("rope", ROPE_FRAMES, _rope_objects()))
    return avis


def build_cast_table(engine: RelationalEngine, index: bool = True) -> None:
    """Add the 6-row ``cast(name, role)`` relation to ``engine``."""
    engine.create_table(
        "cast",
        ["name", "role"],
        list(ROPE_CAST),
        index_on=["role"] if index else (),
    )


#: The mediator program used by the Figure 5 / Figure 6 experiments.
#: query1..query4 are the paper's appendix queries (the primed variants
#: are alternative subgoal orderings = different plans of the same rule).
ROPE_PROGRAM = """
query1(First, Last, Object, Size) :-
    in(Size, video:video_size('rope')) &
    in(Object, video:frames_to_objects('rope', First, Last)).

query2(First, Last, Object, Frames, Actor) :-
    in(Object, video:frames_to_objects('rope', First, Last)) &
    in(Frames, video:object_to_frames('rope', Object)) &
    in(T, relation:equal('cast', 'role', Object)) &
    =(T.name, Actor).

query3(First, Last, Object, Actor) :-
    in(Object, video:frames_to_objects('rope', First, Last)) &
    in(T, relation:equal('cast', 'role', Object)) &
    =(T.name, Actor).

query4(First, Last, Object, Actor) :-
    in(P, relation:all('cast')) &
    =(P.name, Actor) &
    =(P.role, Object) &
    in(X, video:frames_to_objects('rope', First, Last)) &
    =(X, Object).

actors(Actor) :-
    in(Object, video:actors_in('rope')) &
    in(T, relation:equal('cast', 'role', Object)) &
    =(T.name, Actor).

objects(First, Last, Object) :-
    in(Object, video:frames_to_objects('rope', First, Last)).
"""

#: Containment invariant over AVIS frame intervals: a wider interval's
#: object set contains a narrower one's.
ROPE_CONTAINMENT_INVARIANT = (
    "F1 <= F2 & L2 <= L1 => "
    "video:frames_to_objects(V, F1, L1) >= video:frames_to_objects(V, F2, L2)."
)

#: Equality invariant: intervals clipped at the video's end are the same
#: query ('rope' has 240 frames).
ROPE_CLIP_INVARIANT = (
    "Last >= 240 => "
    "video:frames_to_objects(V, First, Last) = "
    "video:frames_to_objects(V, First, 240)."
)

#: Cross-function equality: every object of 'rope' appears somewhere in
#: its 240 frames, so the full-interval scan IS the actor/object listing.
ROPE_ACTORS_EQ_INVARIANT = (
    "video:actors_in('rope') = video:frames_to_objects('rope', 1, 240)."
)

#: Cross-function containment: any interval's objects are a subset of the
#: video's full object listing — lets a cached interval scan serve partial
#: answers for the actor listing.
ROPE_ACTORS_PARTIAL_INVARIANT = (
    "video:actors_in('rope') >= video:frames_to_objects('rope', F, L)."
)


def build_rope_testbed(
    video_site: str = "cornell",
    relation_site: str = "maryland",
    seed: int = 0,
    with_invariants: bool = True,
    verify_plans: bool = False,
    **mediator_kwargs: Any,
) -> Mediator:
    """A fully wired mediator over 'The Rope': AVIS at ``video_site``,
    the cast relation at ``relation_site`` (paper: AVIS remote, INGRES
    nearer), program and invariants loaded.  Extra keyword arguments pass
    through to :class:`Mediator` (``storage=``, ``warm_start=``, ...)."""
    mediator = Mediator(verify_plans=verify_plans, **mediator_kwargs)
    avis = build_rope_avis()
    engine = RelationalEngine("relation")
    build_cast_table(engine)
    mediator.register_domain(avis, site=video_site, seed=seed)
    mediator.register_domain(engine, site=relation_site, seed=seed)
    mediator.load_program(ROPE_PROGRAM)
    if with_invariants:
        mediator.add_invariant(ROPE_CONTAINMENT_INVARIANT)
        mediator.add_invariant(ROPE_CLIP_INVARIANT)
        mediator.add_invariant(ROPE_ACTORS_EQ_INVARIANT)
        mediator.add_invariant(ROPE_ACTORS_PARTIAL_INVARIANT)
    return mediator


# ---------------------------------------------------------------------------
# Logistics (the paper's §2 routetosupplies example)
# ---------------------------------------------------------------------------

INVENTORY_ROWS: tuple[tuple[str, str, int], ...] = (
    ("h-22 fuel", "depot_north", 120),
    ("h-22 fuel", "camp_east", 40),
    ("ammo", "depot_north", 500),
    ("ammo", "fob_delta", 220),
    ("rations", "camp_east", 800),
    ("rations", "fob_delta", 650),
    ("medkits", "field_hospital", 90),
    ("h-22 fuel", "airstrip", 60),
)


def build_inventory_engine(name: str = "ingres") -> RelationalEngine:
    """The INGRES-like engine holding the ``inventory(item, loc, qty)``
    relation of the routetosupplies example."""
    engine = RelationalEngine(name)
    engine.create_table(
        "inventory",
        ["item", "loc", "qty"],
        [list(row) for row in INVENTORY_ROWS],
        index_on=["item"],
    )
    return engine


def build_logistics_terrain(name: str = "terraindb") -> TerrainDomain:
    """A 48×48 terrain with a ridge obstacle and the inventory places."""
    grid = TerrainGrid(48, 48)
    grid.add_obstacle_rect(20, 0, 22, 36)  # a ridge with a southern pass
    for x in range(30, 40):
        for y in range(10, 20):
            grid.set_cost(x, y, 3.0)  # rough ground
    places = {
        "place1": (2, 2),
        "depot_north": (40, 4),
        "camp_east": (44, 30),
        "fob_delta": (30, 44),
        "field_hospital": (10, 40),
        "airstrip": (4, 24),
    }
    for place, (x, y) in places.items():
        grid.add_place(place, x, y)
    return TerrainDomain(name, grid=grid)


# ---------------------------------------------------------------------------
# Spatial points (the paper's §4 range-shrinking invariant example)
# ---------------------------------------------------------------------------


def build_points_file(
    domain: SpatialDomain,
    name: str = "points",
    count: int = 400,
    side: float = 100.0,
    seed: int = 7,
) -> None:
    """Scatter ``count`` named points over a ``side × side`` square — the
    paper's "all the points in file 'points' lie within a 100x100 square",
    making 142 (> side·√2) the radius beyond which range queries shrink."""
    rng = random.Random(seed)
    points = [
        Point(f"pt{i:04d}", rng.uniform(0.0, side), rng.uniform(0.0, side))
        for i in range(count)
    ]
    domain.add_file(name, points)

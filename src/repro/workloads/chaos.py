"""Chaos harness: seeded fault schedules over a redundant multi-site testbed.

The self-healing pipeline (``docs/HEALTH.md``) makes a strong promise:
under arbitrary source outages and latency storms, every query either
completes, degrades to an *annotated* partial answer, or fails with a
typed error — it never hangs, and a tripped breaker is never dialed.
This module builds the worlds those properties are checked against
(``tests/test_chaos.py``):

* :func:`build_chaos_testbed` — ``relations`` source relations, each
  served by a primary domain and (for the first ``backups`` relations)
  a backup domain at a different site computing the *same* function, so
  mid-query plan repair has genuine substitutes to reach for.
* :class:`ChaosSource` — a controllable source: flip ``down`` to inject
  a hard outage, set ``slow_ms`` to start a latency storm, arm
  ``trip_after`` to make a healthy source start failing mid-wave.
* :class:`ChaosSchedule` — a seeded per-wave draw of which sources are
  down and which are storming, so chaos runs are reproducible.

All chaos is injected at the *source function* layer (below the
simulated network), so the breaker, hedging, and repair machinery see
exactly what they would see from a real misbehaving site.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.core.mediator import Mediator
from repro.domains.base import simple_domain
from repro.errors import SourceUnavailableError
from repro.net.health import HealthPolicy, HedgePolicy

#: deterministic fanout of every chaos source function
CHAOS_FANOUT = 2


@dataclass
class ChaosSource:
    """One controllable source serving one relation.

    The function is pure — ``value -> [value/rel.0, value/rel.1]`` — so
    a primary and its backup return identical answers and repair parity
    can be asserted as multiset equality.
    """

    name: str
    relation: int
    site: str
    down: bool = False
    slow_ms: float = 0.0
    #: healthy for this many calls, then permanently down (mid-wave trip)
    trip_after: Optional[int] = None
    calls: int = 0

    def __call__(self, value: object) -> object:
        self.calls += 1
        if self.trip_after is not None and self.calls > self.trip_after:
            self.down = True
        if self.down:
            raise SourceUnavailableError(self.name, site=self.site)
        answers = [
            f"{value}/r{self.relation}.{j}" for j in range(CHAOS_FANOUT)
        ]
        if self.slow_ms > 0.0:
            return answers, self.slow_ms, self.slow_ms
        return answers


@dataclass
class ChaosTestbed:
    """A wired mediator plus handles on every injectable source."""

    mediator: Mediator
    sources: dict[str, ChaosSource]
    #: relation index -> names of the sources serving it (primary first)
    serving: dict[int, tuple[str, ...]]
    relations: int

    def source_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.sources))

    def set_down(self, down: frozenset[str]) -> None:
        for name, source in self.sources.items():
            source.down = name in down
            source.trip_after = None

    def set_storm(self, storming: frozenset[str], slow_ms: float) -> None:
        for name, source in self.sources.items():
            source.slow_ms = slow_ms if name in storming else 0.0

    def heal(self) -> None:
        """All sources up and calm.  Open breakers still need the clock
        advanced past the cooldown before they will probe again."""
        self.set_down(frozenset())
        self.set_storm(frozenset(), 0.0)

    def dead_relations(self, needed: tuple[int, ...]) -> frozenset[int]:
        """Needed relations with *no* live serving source."""
        return frozenset(
            rel
            for rel in needed
            if all(self.sources[name].down for name in self.serving[rel])
        )

    def relation_of(self, source_name: str) -> int:
        return self.sources[source_name].relation

    def queries(self) -> tuple[tuple[str, tuple[int, ...]], ...]:
        """Every (query text, needed relations) pair the program defines:
        one single-relation query per relation plus all ordered chains."""
        out: list[tuple[str, tuple[int, ...]]] = []
        for i in range(self.relations):
            out.append((f"?- q{i}('s', B).", (i,)))
        for i in range(self.relations):
            for j in range(self.relations):
                out.append((f"?- top{i}_{j}('s', C).", (i, j)))
        return tuple(out)

    def expected_answers(self, needed: tuple[int, ...]) -> list[tuple[str]]:
        """Ground truth for a healthy run of the query over ``needed``
        (the source functions are pure, so this is just the chain)."""
        values = ["s"]
        for rel in needed:
            values = [
                f"{value}/r{rel}.{j}"
                for value in values
                for j in range(CHAOS_FANOUT)
            ]
        return [(value,) for value in values]


_CHAOS_SITES = ("cornell", "bucknell", "maryland", "italy")


def _wrap(source: ChaosSource):
    # simple_domain reads arity off __code__.co_argcount, so the source
    # object must be wrapped in a plain single-argument function
    def call(value: object) -> object:
        return source(value)

    return call


def build_chaos_testbed(
    relations: int = 4,
    backups: int = 2,
    seed: int = 0,
    jobs: int = 1,
    health_policy: Optional[HealthPolicy] = None,
    hedge_policy: Optional[HedgePolicy] = None,
    repair: bool = True,
) -> ChaosTestbed:
    """Wire the chaos world: ``relations`` relations, primaries at
    rotating sites, backups for the first ``backups`` relations, repair
    and health tracking on by default."""
    mediator = Mediator(
        health_policy=(
            health_policy if health_policy is not None else HealthPolicy()
        ),
        hedge_policy=hedge_policy,
        repair=repair,
    )
    sources: dict[str, ChaosSource] = {}
    serving: dict[int, tuple[str, ...]] = {}
    rules: list[str] = []
    for i in range(relations):
        names: list[str] = []
        copies = 2 if i < backups else 1
        for copy in range(copies):
            name = f"p{i}" if copy == 0 else f"b{i}"
            site = _CHAOS_SITES[(i + copy) % len(_CHAOS_SITES)]
            source = ChaosSource(name=name, relation=i, site=site)
            sources[name] = source
            names.append(name)
            mediator.register_domain(
                simple_domain(name, {f"r{i}": _wrap(source)}),
                site=site,
                seed=seed + i * 7 + copy,
            )
            rules.append(f"q{i}(A, B) :- in(B, {name}:r{i}(A)).")
        serving[i] = tuple(names)
    for i in range(relations):
        for j in range(relations):
            rules.append(f"top{i}_{j}(A, C) :- q{i}(A, M) & q{j}(M, C).")
    mediator.load_program("\n".join(rules))
    if jobs > 1:
        mediator.set_jobs(jobs)
    return ChaosTestbed(
        mediator=mediator,
        sources=sources,
        serving=serving,
        relations=relations,
    )


@dataclass(frozen=True)
class ChaosWave:
    """One wave of a chaos schedule: the injected world state."""

    index: int
    down: frozenset[str]
    storming: frozenset[str]
    slow_ms: float


@dataclass
class ChaosSchedule:
    """A seeded stream of :class:`ChaosWave` draws.

    Each wave independently downs up to ``max_down`` sources and puts up
    to ``max_storm`` of the survivors into a latency storm.  Waves are
    drawn from a private RNG, so a (seed, waves) pair names one exact
    chaos run forever.
    """

    source_names: tuple[str, ...]
    waves: int = 10
    max_down: int = 2
    max_storm: int = 1
    slow_ms: float = 2000.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def __iter__(self) -> Iterator[ChaosWave]:
        for index in range(self.waves):
            down = frozenset(
                self._rng.sample(
                    self.source_names,
                    self._rng.randrange(self.max_down + 1),
                )
            )
            calm = [name for name in self.source_names if name not in down]
            storm_count = min(
                self._rng.randrange(self.max_storm + 1), len(calm)
            )
            storming = frozenset(self._rng.sample(calm, storm_count))
            yield ChaosWave(
                index=index,
                down=down,
                storming=storming,
                slow_ms=self.slow_ms,
            )

"""Workload generators: seeded random ground calls and query batches.

Used to *train* the DCSM (the paper trained with "about 20 different
instantiations for the arguments of a domain call") and to stress the
summarization experiments with skewed argument distributions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.model import GroundCall
from repro.core.terms import Value


def zipf_choice(rng: random.Random, items: Sequence[Value], skew: float = 1.0) -> Value:
    """Draw one item with a Zipf-like rank distribution (rank 1 hottest).

    ``skew=0`` degenerates to uniform.
    """
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    if skew <= 0:
        return items[rng.randrange(len(items))]
    weights = [1.0 / (rank ** skew) for rank in range(1, len(items) + 1)]
    total = sum(weights)
    target = rng.uniform(0.0, total)
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if target <= acc:
            return item
    return items[-1]


@dataclass
class CallWorkload:
    """Generates ground calls for one source function.

    ``arg_pools`` holds the candidate values per argument position; each
    draw samples every position independently (uniform, or Zipf with
    ``skew > 0``).
    """

    domain: str
    function: str
    arg_pools: tuple[Sequence[Value], ...]
    skew: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def draw(self) -> GroundCall:
        args = tuple(
            zipf_choice(self._rng, pool, self.skew) for pool in self.arg_pools
        )
        return GroundCall(self.domain, self.function, args)

    def draws(self, count: int) -> Iterator[GroundCall]:
        for _ in range(count):
            yield self.draw()

    def distinct_space(self) -> int:
        """Size of the full argument cross-product."""
        size = 1
        for pool in self.arg_pools:
            size *= len(pool)
        return size


def frame_interval_pool(
    num_frames: int, starts: Sequence[int], widths: Sequence[int]
) -> list[tuple[int, int]]:
    """(first, last) interval pairs clipped to a video's frame count —
    handy for building frames_to_objects training workloads."""
    intervals = []
    for start in starts:
        for width in widths:
            last = min(start + width, num_frames)
            if last >= start >= 1:
                intervals.append((start, last))
    return intervals

"""Workload generators: seeded random ground calls, query batches, and
whole mediator programs.

Used to *train* the DCSM (the paper trained with "about 20 different
instantiations for the arguments of a domain call"), to stress the
summarization experiments with skewed argument distributions, and —
via :func:`generate_workload` — to produce seeded layered programs for
the analyzer benchmark and the plan-verifier property tests.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.model import GroundCall
from repro.core.terms import Value
from repro.domains.base import Domain, simple_domain


def zipf_choice(rng: random.Random, items: Sequence[Value], skew: float = 1.0) -> Value:
    """Draw one item with a Zipf-like rank distribution (rank 1 hottest).

    ``skew=0`` degenerates to uniform.
    """
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    if skew <= 0:
        return items[rng.randrange(len(items))]
    weights = [1.0 / (rank ** skew) for rank in range(1, len(items) + 1)]
    total = sum(weights)
    target = rng.uniform(0.0, total)
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if target <= acc:
            return item
    return items[-1]


@dataclass
class CallWorkload:
    """Generates ground calls for one source function.

    ``arg_pools`` holds the candidate values per argument position; each
    draw samples every position independently (uniform, or Zipf with
    ``skew > 0``).
    """

    domain: str
    function: str
    arg_pools: tuple[Sequence[Value], ...]
    skew: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def draw(self) -> GroundCall:
        args = tuple(
            zipf_choice(self._rng, pool, self.skew) for pool in self.arg_pools
        )
        return GroundCall(self.domain, self.function, args)

    def draws(self, count: int) -> Iterator[GroundCall]:
        for _ in range(count):
            yield self.draw()

    def distinct_space(self) -> int:
        """Size of the full argument cross-product."""
        size = 1
        for pool in self.arg_pools:
            size *= len(pool)
        return size


@dataclass(frozen=True)
class GeneratedWorkload:
    """A seeded synthetic mediator program plus the domain serving it."""

    program_text: str
    domain: Domain
    queries: tuple[str, ...]  # "?- top_0('s0', Out)." strings over the roots
    num_rules: int
    #: real source invocations per "domain:function", live-updated by the
    #: domain's own callables — the cache-effectiveness ground truth
    #: (generators that don't count leave this None)
    call_counts: "dict[str, int] | None" = None


def generate_workload(
    layers: int = 3,
    width: int = 2,
    calls_per_leaf: int = 1,
    fanout: int = 2,
    domain_name: str = "gen",
    seed: int = 0,
) -> GeneratedWorkload:
    """A layered chain program over one synthetic domain.

    Layer 0 predicates wrap chains of ``calls_per_leaf`` domain calls
    (each binds its output from the previous value); every higher layer
    composes two predicates of the layer below, sharing the middle
    variable (``p(A, B) :- q(A, M) & r(M, B)``).  Each source function
    maps a string to ``fanout`` successor strings, so plan search, the
    feasibility pass, and execution all have real work to do.  Fully
    deterministic for a given ``seed``.
    """
    if layers < 1 or width < 1 or calls_per_leaf < 1 or fanout < 1:
        raise ValueError("generate_workload sizes must all be >= 1")
    rng = random.Random(seed)
    rules: list[str] = []
    functions: dict[str, object] = {}

    def successor_fn(function_index: int):
        def call(value):
            return [f"{value}>{function_index}.{j}" for j in range(fanout)]

        return call

    function_count = 0
    for leaf in range(width):
        chain: list[str] = []
        previous = "A"
        for position in range(calls_per_leaf):
            fn_name = f"f{function_count}"
            functions[fn_name] = successor_fn(function_count)
            function_count += 1
            out = "B" if position == calls_per_leaf - 1 else f"M{position}"
            chain.append(f"in({out}, {domain_name}:{fn_name}({previous}))")
            previous = out
        rules.append(f"p0_{leaf}(A, B) :- {' & '.join(chain)}.")
    for layer in range(1, layers):
        for slot in range(width):
            left = rng.randrange(width)
            right = rng.randrange(width)
            rules.append(
                f"p{layer}_{slot}(A, B) :- "
                f"p{layer - 1}_{left}(A, M) & p{layer - 1}_{right}(M, B)."
            )
    top = layers - 1
    queries = tuple(
        f"?- p{top}_{slot}('s{slot}', Out)." for slot in range(width)
    )
    return GeneratedWorkload(
        program_text="\n".join(rules),
        domain=simple_domain(domain_name, functions),
        queries=queries,
        num_rules=len(rules),
    )


def generate_star_workload(
    calls: int = 8,
    max_fanout: int = 4,
    domain_name: str = "star",
    seed: int = 0,
) -> GeneratedWorkload:
    """A wide conjunction: one rule whose body is ``calls`` independent
    domain calls, all taking the same (query-bound) input variable.

    Chain workloads (:func:`generate_workload`) admit exactly one
    executable ordering — each call feeds the next — so they exercise
    feasibility, not choice.  A star body is the opposite: once the root
    is bound every call is executable, giving ``calls!`` permissible
    orderings, and the per-function fanouts are drawn from
    ``1..max_fanout`` so the orderings genuinely differ in cost (cheap,
    low-fanout calls belong up front).  This is the planner benchmark's
    stress shape.
    """
    if calls < 1 or max_fanout < 1:
        raise ValueError("generate_star_workload sizes must all be >= 1")
    rng = random.Random(seed)
    functions: dict[str, object] = {}
    body: list[str] = []
    outputs: list[str] = []
    for index in range(calls):
        fanout = 1 + rng.randrange(max_fanout)

        def star_fn(function_index: int = index, width: int = fanout):
            def call(value):
                return [f"{value}|{function_index}.{j}" for j in range(width)]

            return call

        fn_name = f"g{index}"
        functions[fn_name] = star_fn()
        outputs.append(f"O{index}")
        body.append(f"in(O{index}, {domain_name}:{fn_name}(A))")
    head = f"wide(A, {', '.join(outputs)})"
    rule = f"{head} :- {' & '.join(body)}."
    query = f"?- wide('s0', {', '.join(outputs)})."
    return GeneratedWorkload(
        program_text=rule,
        domain=simple_domain(domain_name, functions),
        queries=(query,),
        num_rules=1,
    )


def generate_fanout_workload(
    roots: int = 4,
    fanout: int = 3,
    domain_name: str = "fan",
    seed: int = 0,
) -> GeneratedWorkload:
    """Independent root calls, each feeding its own dependent call.

    The body is ``roots`` mutually-independent calls on the query-bound
    variable — ``in(Mi, fan:ri(A))`` — each producing ``fanout`` middle
    values, and each middle value feeding a private second-stage call
    ``in(Oi, fan:wi(Mi))``.  This is the parallel runtime's benchmark
    shape: the roots form an antichain in the dependency DAG (the wave
    prefetch overlaps all of them), and the cross-product of middles
    fans the plan suffix out across workers.  Deterministic per ``seed``.
    """
    if roots < 1 or fanout < 1:
        raise ValueError("generate_fanout_workload sizes must all be >= 1")
    functions: dict[str, object] = {}
    body: list[str] = []
    outputs: list[str] = []
    for index in range(roots):
        def root_fn(function_index: int = index, width: int = fanout):
            def call(value):
                return [f"{value}~{function_index}.{j}" for j in range(width)]

            return call

        def work_fn(function_index: int = index):
            def call(value):
                return [f"{value}!w{function_index}"]

            return call

        functions[f"r{index}"] = root_fn()
        functions[f"w{index}"] = work_fn()
        body.append(f"in(M{index}, {domain_name}:r{index}(A))")
        outputs.append(f"O{index}")
    # second stage after every root so the suffix has real work per branch
    for index in range(roots):
        body.append(f"in(O{index}, {domain_name}:w{index}(M{index}))")
    head = f"fanq(A, {', '.join(outputs)})"
    rule = f"{head} :- {' & '.join(body)}."
    query = f"?- fanq('s{seed}', {', '.join(outputs)})."
    return GeneratedWorkload(
        program_text=rule,
        domain=simple_domain(domain_name, functions),
        queries=(query,),
        num_rules=1,
    )


def generate_shared_prefix_workload(
    queries: int = 4,
    prefix_depth: int = 5,
    fanout: int = 2,
    domain_name: str = "share",
    seed: int = 0,
    prefix_sleep_s: float = 0.0,
) -> GeneratedWorkload:
    """``queries`` query shapes sharing one expensive prefix chain.

    A ``shared`` predicate walks a ``prefix_depth``-call dependent chain
    (the first call fans out to ``fanout`` rows, the rest are 1→1), and
    each query predicate ``q{i}`` extends it with a private tail call —
    the repeated-subexpression shape of multi-query optimization: every
    query redoes the whole chain unless the subplan tier replays it.

    ``call_counts`` tracks real source invocations per function.
    ``prefix_sleep_s`` adds *wall-clock* latency to the chain's first
    call so two concurrent queries reliably overlap inside it (the
    single-flight sharing benchmark).  Deterministic per ``seed``.
    """
    if queries < 1 or prefix_depth < 2 or fanout < 1:
        raise ValueError(
            "generate_shared_prefix_workload needs queries >= 1, "
            "prefix_depth >= 2, fanout >= 1"
        )
    counts: dict[str, int] = {}
    # concurrent engines (jobs>1) invoke these callables from worker
    # threads; the lock keeps the ground-truth call counts exact
    counts_lock = threading.Lock()

    def counted(name: str, fn):  # type: ignore[no-untyped-def]
        def call(value: Value) -> list[Value]:
            with counts_lock:
                counts[f"{domain_name}:{name}"] = (
                    counts.get(f"{domain_name}:{name}", 0) + 1
                )
            return fn(value)

        return call

    functions: dict[str, object] = {}

    def chain_head(value: Value) -> list[Value]:
        if prefix_sleep_s > 0:
            import time

            time.sleep(prefix_sleep_s)
        return [f"{value}>0.{j}" for j in range(fanout)]

    functions["s0"] = counted("s0", chain_head)
    for index in range(1, prefix_depth):
        def link(function_index: int = index):  # type: ignore[no-untyped-def]
            def call(value: Value) -> list[Value]:
                return [f"{value}>{function_index}"]

            return call

        functions[f"s{index}"] = counted(f"s{index}", link())
    body = [f"in(M0, {domain_name}:s0(A))"]
    for index in range(1, prefix_depth):
        body.append(f"in(M{index}, {domain_name}:s{index}(M{index - 1}))")
    last = f"M{prefix_depth - 1}"
    rules = [f"shared(A, {last}) :- {' & '.join(body)}."]
    query_texts = []
    for index in range(queries):
        def tail(function_index: int = index):  # type: ignore[no-untyped-def]
            def call(value: Value) -> list[Value]:
                return [f"{value}${function_index}"]

            return call

        functions[f"t{index}"] = counted(f"t{index}", tail())
        rules.append(
            f"q{index}(A, Out) :- shared(A, M) & in(Out, {domain_name}:t{index}(M))."
        )
        query_texts.append(f"?- q{index}('s{seed}', Out).")
    return GeneratedWorkload(
        program_text="\n".join(rules),
        domain=simple_domain(domain_name, functions),
        queries=tuple(query_texts),
        num_rules=len(rules),
        call_counts=counts,
    )


def frame_interval_pool(
    num_frames: int, starts: Sequence[int], widths: Sequence[int]
) -> list[tuple[int, int]]:
    """(first, last) interval pairs clipped to a video's frame count —
    handy for building frames_to_objects training workloads."""
    intervals = []
    for start in starts:
        for width in widths:
            last = min(start + width, num_frames)
            if last >= start >= 1:
                intervals.append((start, last))
    return intervals

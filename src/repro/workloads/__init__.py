"""Synthetic datasets and workload generators for tests, examples, and
the experiment harness."""

from repro.workloads.datasets import (
    build_cast_table,
    build_inventory_engine,
    build_logistics_terrain,
    build_points_file,
    build_rope_avis,
    build_rope_testbed,
)
from repro.workloads.generators import (
    CallWorkload,
    GeneratedWorkload,
    generate_fanout_workload,
    generate_star_workload,
    generate_workload,
    zipf_choice,
)
from repro.workloads.serving_chaos import (
    ServingChaosReport,
    ServingChaosTestbed,
    WallSource,
    build_serving_testbed,
    run_serving_chaos,
)

__all__ = [
    "build_cast_table",
    "build_inventory_engine",
    "build_logistics_terrain",
    "build_points_file",
    "build_rope_avis",
    "build_rope_testbed",
    "CallWorkload",
    "GeneratedWorkload",
    "generate_fanout_workload",
    "generate_star_workload",
    "generate_workload",
    "zipf_choice",
    "ServingChaosReport",
    "ServingChaosTestbed",
    "WallSource",
    "build_serving_testbed",
    "run_serving_chaos",
]

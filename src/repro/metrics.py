"""A lightweight in-process metrics registry.

Every subsystem of the mediator — the executor, the network wrapper, the
CIM, and the DCSM — records what it actually did into a shared
:class:`MetricsRegistry`: counters for discrete events (call attempts,
retries, timeouts, cache-hit kinds) and histograms for continuous ones
(per-call latency, transfer bytes, estimate-vs-actual error).  The
registry is what ``repro stats`` and the shell's ``:metrics`` command
render, and what the resilience tests assert against.

Design constraints, in order:

* **zero dependencies** — plain dicts and floats, no client library;
* **cheap when idle** — a counter increment is one dict lookup and one
  float add; components hold ``metrics=None`` and skip recording
  entirely when no registry is attached;
* **deterministic** — values derive only from simulated execution, so a
  seeded run produces byte-identical reports;
* **thread-safe** — the parallel runtime's workers record concurrently,
  so each counter/histogram guards its mutation with a per-instance
  lock (registration is guarded by a registry-wide lock).

The metric *names* form a stable catalog documented in
``docs/RESILIENCE.md``; dotted lower-case names (``net.retries``,
``cim.hits.exact``) keep related series adjacent in the rendered report.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

from repro.errors import ReproError


class Counter:
    """A monotonically increasing (float-valued) event counter."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> float:
        if amount < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease (by {amount})")
        with self._lock:
            self.value += amount
            return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value:g})"


class Histogram:
    """A streaming distribution: running moments plus retained samples.

    Retains every observation (experiments are small and simulated), so
    exact quantiles are available; running count/sum/min/max stay O(1).
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self._samples.append(value)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, p: float) -> Optional[float]:
        """Exact percentile ``p`` in [0, 100] (nearest-rank)."""
        if not self._samples:
            return None
        if not 0.0 <= p <= 100.0:
            raise ReproError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """Name → counter/histogram table shared across subsystems."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- access ----------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.get(name)
                if counter is None:
                    if name in self._histograms:
                        raise ReproError(f"metric {name!r} is already a histogram")
                    counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    if name in self._counters:
                        raise ReproError(f"metric {name!r} is already a counter")
                    histogram = self._histograms[name] = Histogram(name)
        return histogram

    # -- recording conveniences ---------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- reading ----------------------------------------------------------------

    def value(self, name: str) -> float:
        """Current value of a counter (0.0 if never incremented)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0.0

    def total(self, prefix: str) -> float:
        """Sum of every counter under a dotted prefix — e.g.
        ``total("analysis.code")`` is the number of diagnostics the
        analyzer has reported across all codes."""
        return sum(counter.value for counter in self.counters(prefix))

    def counters(self, prefix: str = "") -> Iterator[Counter]:
        # copy the name list under the lock: concurrent sessions register
        # metrics while stats readers iterate, and an unguarded dict walk
        # raises "dictionary changed size during iteration"
        with self._lock:
            names = sorted(self._counters)
        for name in names:
            if name.startswith(prefix):
                counter = self._counters.get(name)
                if counter is not None:
                    yield counter

    def histograms(self, prefix: str = "") -> Iterator[Histogram]:
        with self._lock:
            names = sorted(self._histograms)
        for name in names:
            if name.startswith(prefix):
                histogram = self._histograms.get(name)
                if histogram is not None:
                    yield histogram

    def snapshot(self) -> dict[str, float]:
        """Flat name → value dict (histograms contribute summary stats)."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        out: dict[str, float] = {
            name: counter.value for name, counter in counters.items()
        }
        for name, histogram in histograms.items():
            out[f"{name}.count"] = float(histogram.count)
            out[f"{name}.sum"] = histogram.total
            if histogram.count:
                out[f"{name}.mean"] = histogram.total / histogram.count
                out[f"{name}.min"] = histogram.min  # type: ignore[assignment]
                out[f"{name}.max"] = histogram.max  # type: ignore[assignment]
        return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._histograms)

    def render(self) -> str:
        """The human-readable report behind ``repro stats``."""
        with self._lock:
            names = (*self._counters, *self._histograms)
        if not names:
            return "(no metrics recorded)"
        lines: list[str] = []
        width = max((len(name) for name in names), default=0)
        for counter in self.counters():
            lines.append(f"{counter.name:<{width}}  {counter.value:g}")
        for histogram in self.histograms():
            if histogram.count:
                lines.append(
                    f"{histogram.name:<{width}}  n={histogram.count} "
                    f"mean={histogram.mean:.2f} min={histogram.min:.2f} "
                    f"max={histogram.max:.2f} p95={histogram.percentile(95):.2f}"
                )
            else:
                lines.append(f"{histogram.name:<{width}}  n=0")
        return "\n".join(lines)

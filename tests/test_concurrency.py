"""Thread-safety of one shared Mediator under concurrent sessions.

The serving layer points many client threads at a single mediator, so
the structures the sequential test-suite exercises one call at a time —
the plan cache, the metrics registry, the lazy rewriter — here get
hammered from every direction at once: mixed queries racing
``notify_source_changed`` racing stats reads.  The assertions are
(1) no exceptions anywhere, (2) answer parity with a quiet mediator,
and (3) internally consistent cache/metric snapshots afterwards.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.mediator import Mediator
from repro.core.plancache import PlanCache, CachedPlan
from repro.errors import ReproError
from repro.metrics import MetricsRegistry
from repro.workloads.generators import generate_shared_prefix_workload


def _build_workload_mediator(jobs: int = 1) -> tuple[Mediator, tuple[str, ...]]:
    workload = generate_shared_prefix_workload(
        queries=4, prefix_depth=3, fanout=2, seed=7
    )
    mediator = Mediator(use_subplan_cache=True, jobs=jobs)
    mediator.register_domain(workload.domain)
    mediator.load_program(workload.program_text)
    return mediator, workload.queries


def test_shared_mediator_hammer_mixed_queries_and_churn():
    mediator, queries = _build_workload_mediator(jobs=4)
    # ground truth from a quiet run on an identical mediator
    reference, _ = _build_workload_mediator(jobs=1)
    expected = {
        q: {tuple(a) for a in reference.query(q, use_cim=True).answers}
        for q in queries
    }

    errors: list[BaseException] = []
    stop = threading.Event()

    def session(index: int) -> None:
        try:
            for round_number in range(6):
                query = queries[(index + round_number) % len(queries)]
                result = mediator.query(query, use_cim=True)
                got = {tuple(a) for a in result.answers}
                assert got == expected[query], (
                    f"parity lost for {query}: {got} != {expected[query]}"
                )
        except BaseException as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    def churn() -> None:
        try:
            domain_name = next(iter(mediator.registry.names()))
            while not stop.is_set():
                mediator.notify_source_changed(domain_name)
                mediator.metrics.snapshot()
                mediator.metrics.render()
                len(mediator.plan_cache)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    workers = [threading.Thread(target=session, args=(i,)) for i in range(8)]
    churner = threading.Thread(target=churn)
    churner.start()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120.0)
    stop.set()
    churner.join(timeout=30.0)
    assert not errors, f"concurrent session errors: {errors[:3]}"
    # the metric totals must be coherent: every query was counted
    assert mediator.metrics.value("mediator.queries") == 8 * 6


def test_plan_cache_direct_thread_hammer():
    cache = PlanCache(max_entries=32)
    errors: list[BaseException] = []

    def writer(index: int) -> None:
        try:
            for round_number in range(300):
                key = f"k{(index * 300 + round_number) % 48}"
                cache.put(
                    key,
                    CachedPlan(
                        template=None,
                        vector=None,
                        params=(),
                        sources=frozenset({("d", "f")}),
                        epoch=0,
                        dcsm_version=0,
                        value_dependent=True,
                    ),
                )
                cache.get(key, epoch=0, dcsm_version=0)
                if round_number % 50 == 0:
                    cache.invalidate_source("d")
                list(cache.items())
                len(cache)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not errors, f"plan cache races: {errors[:3]}"
    # counters stayed coherent under the lock
    assert cache.evictions == sum(cache.invalidations.values())


def test_metrics_registry_iteration_during_registration():
    registry = MetricsRegistry()
    errors: list[BaseException] = []
    stop = threading.Event()

    def register() -> None:
        try:
            index = 0
            while not stop.is_set() and index < 3000:
                registry.inc(f"metric.{index}")
                registry.observe(f"latency.{index}", float(index))
                index += 1
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    def read() -> None:
        try:
            while not stop.is_set():
                registry.snapshot()
                registry.render()
                list(registry.counters())
                registry.total("metric.")
                len(registry)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
            stop.set()

    writers = [threading.Thread(target=register) for _ in range(2)]
    readers = [threading.Thread(target=read) for _ in range(2)]
    for thread in (*writers, *readers):
        thread.start()
    for thread in writers:
        thread.join(timeout=60.0)
    stop.set()
    for thread in readers:
        thread.join(timeout=30.0)
    assert not errors, f"registry races: {errors[:3]}"


def test_lazy_rewriter_single_instance_under_races(m1_mediator):
    seen = []

    def touch() -> None:
        seen.append(m1_mediator.rewriter)

    threads = [threading.Thread(target=touch) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert len({id(rewriter) for rewriter in seen}) == 1


# -- close() lifecycle --------------------------------------------------------


def test_close_is_idempotent_and_flushes_once(m1_mediator):
    m1_mediator.query("?- m(A, C).", use_cim=True)
    assert not m1_mediator.closed
    m1_mediator.close()
    assert m1_mediator.closed
    m1_mediator.close()  # second close: no error, no double flush
    assert m1_mediator.closed


def test_flush_after_close_raises_cleanly(m1_mediator):
    m1_mediator.close()
    with pytest.raises(ReproError, match="closed"):
        m1_mediator.flush_storage()


def test_queries_still_work_after_close(m1_mediator):
    before = {tuple(a) for a in m1_mediator.query("?- m(A, C).").answers}
    m1_mediator.close()
    after = {tuple(a) for a in m1_mediator.query("?- m(A, C).").answers}
    assert after == before


def test_concurrent_close_flushes_exactly_once(m1_mediator):
    m1_mediator.query("?- m(A, C).", use_cim=True)
    errors: list[BaseException] = []

    def closer() -> None:
        try:
            m1_mediator.close()
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=closer) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not errors
    assert m1_mediator.closed

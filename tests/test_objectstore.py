"""Object-store substrate tests, including mediation over the object graph."""

import pytest

from repro.core.mediator import Mediator
from repro.core.model import GroundCall
from repro.domains.objectstore import ObjectStoreDomain
from repro.errors import BadCallError, SchemaError


@pytest.fixture
def store() -> ObjectStoreDomain:
    """directors —directed→ movies —features→ actors."""
    store = ObjectStoreDomain()
    store.define_class("director", ["name"], {"directed": "movie"})
    store.define_class("movie", ["title", "year"], {"features": "actor"})
    store.define_class("actor", ["name"])
    store.create("director", "d1", name="hitchcock")
    store.create("movie", "m1", title="rope", year=1948)
    store.create("movie", "m2", title="vertigo", year=1958)
    store.create("actor", "a1", name="stewart")
    store.create("actor", "a2", name="dall")
    store.link("director", "d1", "directed", "m1")
    store.link("director", "d1", "directed", "m2")
    store.link("movie", "m1", "features", "a1")
    store.link("movie", "m1", "features", "a2")
    store.link("movie", "m2", "features", "a1")
    return store


class TestSchema:
    def test_duplicate_class(self, store):
        with pytest.raises(SchemaError):
            store.define_class("movie", ["x"])

    def test_oid_attribute_reserved(self, store):
        with pytest.raises(SchemaError):
            store.define_class("bad", ["oid"])

    def test_duplicate_attribute(self, store):
        with pytest.raises(SchemaError):
            store.define_class("bad", ["a", "a"])

    def test_unknown_attribute_on_create(self, store):
        with pytest.raises(SchemaError):
            store.create("actor", "a9", wingspan=2)

    def test_duplicate_object(self, store):
        with pytest.raises(SchemaError):
            store.create("actor", "a1", name="again")

    def test_link_validation(self, store):
        with pytest.raises(SchemaError):
            store.link("actor", "a1", "directed", "m1")  # no such relationship
        with pytest.raises(BadCallError):
            store.link("director", "d1", "directed", "m999")  # missing target


class TestFunctions:
    def test_get(self, store):
        result = store.execute(GroundCall("objects", "get", ("movie", "m1")))
        row = result.answers[0]
        assert row.oid == "m1" and row.title == "rope" and row.year == 1948

    def test_get_missing_attribute_is_none(self, store):
        store.create("movie", "m3", title="notorious")  # no year
        result = store.execute(GroundCall("objects", "get", ("movie", "m3")))
        assert result.answers[0].year is None

    def test_instances(self, store):
        result = store.execute(GroundCall("objects", "instances", ("movie",)))
        assert set(result.answers) == {"m1", "m2"}

    def test_attr_eq(self, store):
        result = store.execute(
            GroundCall("objects", "attr_eq", ("movie", "year", 1948))
        )
        assert result.answers == ("m1",)

    def test_attr_eq_unknown_attribute(self, store):
        with pytest.raises(BadCallError):
            store.execute(GroundCall("objects", "attr_eq", ("movie", "gross", 1)))

    def test_follow(self, store):
        result = store.execute(
            GroundCall("objects", "follow", ("director", "d1", "directed"))
        )
        assert set(result.answers) == {"m1", "m2"}

    def test_follow_no_links(self, store):
        store.create("director", "d2", name="welles")
        result = store.execute(
            GroundCall("objects", "follow", ("director", "d2", "directed"))
        )
        assert result.answers == ()

    def test_path_two_hops_deduplicates(self, store):
        result = store.execute(
            GroundCall("objects", "path", ("director", "d1", "directed", "features"))
        )
        # a1 reachable via both movies, reported once
        assert set(result.answers) == {"a1", "a2"}
        assert len(result.answers) == 2

    def test_unknown_class_and_object(self, store):
        with pytest.raises(BadCallError):
            store.execute(GroundCall("objects", "instances", ("spaceship",)))
        with pytest.raises(BadCallError):
            store.execute(GroundCall("objects", "get", ("movie", "m99")))


class TestMediation:
    def test_cross_source_join_over_object_graph(self, store):
        mediator = Mediator()
        mediator.register_domain(store, site="cornell")
        mediator.load_program(
            """
            filmography(Director, Title) :-
                in(D, objects:attr_eq('director', 'name', Director)) &
                in(M, objects:follow('director', D, 'directed')) &
                in(Row, objects:get('movie', M)) &
                =(Row.title, Title).
            costars(Director, Actor) :-
                in(D, objects:attr_eq('director', 'name', Director)) &
                in(A, objects:path('director', D, 'directed', 'features')) &
                in(Row, objects:get('actor', A)) &
                =(Row.name, Actor).
            """
        )
        films = mediator.query("?- filmography(hitchcock, T).")
        assert sorted(films.column("T")) == ["rope", "vertigo"]
        actors = mediator.query("?- costars(hitchcock, A).")
        assert sorted(actors.column("A")) == ["dall", "stewart"]

    def test_caching_object_calls(self, store):
        mediator = Mediator()
        mediator.register_domain(store, site="italy")
        mediator.load_program(
            "movie_year(M, Y) :- in(R, objects:get('movie', M)) & =(R.year, Y)."
        )
        cold = mediator.query("?- movie_year(m1, Y).", use_cim=True)
        warm = mediator.query("?- movie_year(m1, Y).", use_cim=True)
        assert warm.t_all_ms < cold.t_all_ms / 10
        assert warm.answers == cold.answers

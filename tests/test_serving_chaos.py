"""Chaos properties of the serving-tier request lifecycle.

The promise under test (docs/SERVING.md): under hostile traffic —
slow-loris clients, mid-request disconnects, malformed and oversized
frames, concurrent cancel storms, source outages — every admitted
request reaches exactly one terminal status, cancelled runs stop
dialing sources, no worker thread leaks past drain, and no ticket is
left stuck in the admission queue.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.workloads.serving_chaos import (
    build_serving_testbed,
    run_serving_chaos,
    send_malformed_frames,
    slow_loris,
)

#: oversubscribe the chaos run via the environment (CI sets 16)
STRESS_JOBS = int(os.environ.get("REPRO_STRESS_JOBS", "2"))


@pytest.mark.chaos
def test_serving_chaos_invariants_hold():
    """A seeded hostile run: zero thread leaks, zero stuck tickets,
    frozen dial counts after cancellation, and exact once-accounting
    across terminal statuses."""
    report = run_serving_chaos(rounds=2, seed=7, wall_ms=25.0)
    # every tracked request reached exactly one terminal status — a
    # request is never both executed and rejected, never double-counted
    assert report.terminal_total == report.sent
    # the serving tier survives hostile clients without leaking threads
    assert report.leaked_threads == 0
    # nothing left queued or in flight after drain
    assert report.stuck_tickets == 0
    assert report.queue_depth_after == 0
    assert report.in_flight_after == 0
    # a cancelled run really stops dialing: the dial count freezes once
    # in-progress dials settle
    assert report.dials_after_settle == report.dials_at_cancel
    # the cancel storms actually cancelled work, and all acks arrived
    assert report.cancelled >= 1
    assert report.cancel_acks >= 1
    # malformed frames die with a typed error or a clean hangup
    assert report.malformed_statuses
    assert set(report.malformed_statuses) <= {"error", "closed"}


@pytest.mark.chaos
def test_serving_chaos_parallel_executor():
    """The same invariants with the parallel executor underneath — the
    cancel token must propagate through worker fan-out."""
    report = run_serving_chaos(
        rounds=1, seed=3, wall_ms=25.0, jobs=max(2, STRESS_JOBS)
    )
    assert report.terminal_total == report.sent
    assert report.leaked_threads == 0
    assert report.stuck_tickets == 0
    assert report.dials_after_settle == report.dials_at_cancel


@pytest.mark.chaos
def test_slow_loris_does_not_leak_or_block():
    """Byte-trickling clients that never finish a line must not pin
    reader threads or block real traffic."""
    from repro.serving.client import ServingClient
    from repro.serving.server import MediatorServer, ServingConfig

    testbed = build_serving_testbed(relations=2, wall_ms=0.0)
    before = threading.active_count()
    server = MediatorServer(
        testbed.mediator, config=ServingConfig(workers=2)
    ).start()
    host, port = server.address
    try:
        lorises = [
            threading.Thread(
                target=slow_loris,
                args=(host, port),
                kwargs={"byte_delay_s": 0.002, "max_bytes": 24},
                daemon=True,
            )
            for _ in range(4)
        ]
        for thread in lorises:
            thread.start()
        # real traffic flows while the lorises trickle
        with ServingClient(host, port) as client:
            response = client.query(testbed.chain_query(1, key="real"))
            assert response["status"] == "ok"
        for thread in lorises:
            thread.join(timeout=10.0)
        statuses = send_malformed_frames(host, port)
        assert set(statuses) <= {"error", "closed"}
    finally:
        server.drain(timeout=15.0)
    deadline = time.monotonic() + 5.0
    while threading.active_count() > before and time.monotonic() < deadline:
        time.sleep(0.05)
    assert threading.active_count() <= before

"""Parallel execution runtime tests: DAG analysis, worker pool,
single-flight dedup, answer parity with the sequential engine,
cancellation, and fault behaviour under concurrency.

The load-bearing property here is the one the subsystem is built
around: for any plan, ``ParallelExecutor.run`` returns the *same answer
multiset* as the sequential ``Executor.run`` — parallelism may only
change simulated timings, never results.
"""

from __future__ import annotations

import os
import threading
import time
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mediator import Mediator
from repro.errors import (
    ExecutionCancelledError,
    PermanentSourceError,
    ReproError,
    RetryExhaustedError,
    SourceUnavailableError,
)
from repro.net.faults import FaultSpec
from repro.net.policy import RetryPolicy
from repro.runtime import (
    CancellationToken,
    ParallelExecutor,
    SingleFlight,
    WorkerPool,
    build_dag,
)
from repro.workloads.generators import (
    generate_fanout_workload,
    generate_star_workload,
    generate_workload,
)


#: CI's concurrency-stress job re-runs this suite with the parallel
#: engine oversubscribed (e.g. REPRO_STRESS_JOBS=16) to shake out races
#: that small worker counts hide.
_STRESS_JOBS = int(os.environ.get("REPRO_STRESS_JOBS", "0"))


def _mediator_for(workload, jobs=1, site=None, faults=None, policy=None,
                  degrade=True, memoize=False):
    if _STRESS_JOBS and jobs > 1:
        jobs = _STRESS_JOBS
    mediator = Mediator(
        retry_policy=policy,
        degrade_on_failure=degrade,
        memoize_calls=memoize,
        jobs=jobs,
    )
    mediator.register_domain(workload.domain, site=site, faults=faults)
    mediator.load_program(workload.program_text)
    return mediator


def _answers(mediator, query, **kwargs):
    return mediator.query(query, **kwargs).execution.answers


# ---------------------------------------------------------------------------
# dependency DAG
# ---------------------------------------------------------------------------


class TestPlanDag:
    def _plan(self, workload, query=None):
        mediator = _mediator_for(workload)
        return mediator.plans(query or workload.queries[0])[0]

    def test_star_roots_are_all_independent(self):
        workload = generate_star_workload(calls=4, max_fanout=2, seed=0)
        dag = build_dag(self._plan(workload))
        assert len(dag.root_calls) == 4
        assert dag.first_dependent_call() is None
        assert dag.width() >= 4

    def test_chain_has_single_root(self):
        workload = generate_workload(layers=1, width=1, calls_per_leaf=3)
        dag = build_dag(self._plan(workload))
        assert len(dag.root_calls) == 1
        assert dag.first_dependent_call() is not None

    def test_fanout_workload_shape(self):
        workload = generate_fanout_workload(roots=3, fanout=2)
        dag = build_dag(self._plan(workload))
        # the planner may interleave roots and dependents, but at least
        # the first step is always a root and some step depends on one
        assert len(dag.root_calls) >= 1
        assert dag.width() >= 1


# ---------------------------------------------------------------------------
# worker pool + cancellation token
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_runs_submitted_tasks(self):
        pool = WorkerPool(jobs=3)
        try:
            futures = [pool.submit(lambda i=i: i * i) for i in range(10)]
            assert [f.result(timeout=5) for f in futures] == [
                i * i for i in range(10)
            ]
        finally:
            pool.shutdown()

    def test_propagates_exceptions(self):
        pool = WorkerPool(jobs=1)
        try:
            def boom():
                raise ValueError("nope")

            with pytest.raises(ValueError):
                pool.submit(boom).result(timeout=5)
        finally:
            pool.shutdown()

    def test_cancelled_queued_tasks_fail_fast(self):
        token = CancellationToken()
        pool = WorkerPool(jobs=1, queue_capacity=8, token=token)
        try:
            gate = threading.Event()
            started = threading.Event()

            def blocker_fn():
                started.set()
                gate.wait(timeout=5)

            blocker = pool.submit(blocker_fn)  # occupies the only worker
            assert started.wait(timeout=5)
            queued = [pool.submit(lambda: "ran") for _ in range(3)]
            token.cancel()
            gate.set()
            blocker.result(timeout=5)
            for future in queued:
                with pytest.raises(ExecutionCancelledError):
                    future.result(timeout=5)
        finally:
            pool.shutdown()

    def test_rejects_zero_workers(self):
        with pytest.raises(ReproError):
            WorkerPool(jobs=0)

    def test_token_raise_if_cancelled(self):
        token = CancellationToken()
        token.raise_if_cancelled("anywhere")  # no-op before cancel
        token.cancel()
        assert token.is_cancelled()
        with pytest.raises(ExecutionCancelledError):
            token.raise_if_cancelled("here")


# ---------------------------------------------------------------------------
# single-flight
# ---------------------------------------------------------------------------


class TestSingleFlight:
    def test_concurrent_identical_calls_collapse(self):
        flight = SingleFlight()
        executions = []
        start = threading.Barrier(4)

        def fn():
            executions.append(threading.get_ident())
            time.sleep(0.05)
            return 42

        results = []

        def caller():
            start.wait()
            results.append(flight.do("key", fn))

        threads = [threading.Thread(target=caller) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(executions) == 1
        assert [value for value, _shared in results] == [42] * 4
        assert sum(1 for _v, shared in results if shared) == 3
        assert flight.deduped == 3
        assert flight.leads == 1
        assert flight.inflight_count() == 0

    def test_distinct_keys_do_not_collapse(self):
        flight = SingleFlight()
        a, shared_a = flight.do("a", lambda: 1)
        b, shared_b = flight.do("b", lambda: 2)
        assert (a, b) == (1, 2)
        assert not shared_a and not shared_b
        assert flight.deduped == 0

    def test_leader_failure_propagates_to_followers(self):
        flight = SingleFlight()
        start = threading.Barrier(3)
        outcomes = []

        def fn():
            time.sleep(0.05)
            raise ValueError("boom")

        def caller():
            start.wait()
            try:
                flight.do("key", fn)
                outcomes.append("ok")
            except ValueError:
                outcomes.append("error")

        threads = [threading.Thread(target=caller) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes == ["error"] * 3
        assert flight.inflight_count() == 0

    def test_follower_cancellation_raises(self):
        flight = SingleFlight()
        token = CancellationToken()
        release = threading.Event()
        entered = threading.Event()

        def slow():
            entered.set()
            release.wait(timeout=5)
            return "late"

        leader = threading.Thread(target=lambda: flight.do("key", slow))
        leader.start()
        assert entered.wait(timeout=5)
        token.cancel()
        with pytest.raises(ExecutionCancelledError):
            flight.do("key", lambda: "never", cancelled=token.is_cancelled)
        release.set()
        leader.join()


# ---------------------------------------------------------------------------
# answer parity with the sequential engine (the core property)
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(
    calls=st.integers(min_value=1, max_value=6),
    max_fanout=st.integers(min_value=1, max_value=3),
    jobs=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10),
)
def test_star_answers_match_sequential(calls, max_fanout, jobs, seed):
    workload = generate_star_workload(calls=calls, max_fanout=max_fanout, seed=seed)
    query = workload.queries[0]
    sequential = _mediator_for(workload, jobs=1)
    parallel = _mediator_for(workload, jobs=jobs)
    seq = sequential.query(query).execution
    par = parallel.query(query).execution
    assert Counter(par.answers) == Counter(seq.answers)
    assert par.complete and seq.complete


@settings(max_examples=10, deadline=None)
@given(
    roots=st.integers(min_value=1, max_value=5),
    fanout=st.integers(min_value=1, max_value=3),
    jobs=st.integers(min_value=2, max_value=6),
)
def test_fanout_answers_match_sequential(roots, fanout, jobs):
    workload = generate_fanout_workload(roots=roots, fanout=fanout)
    query = workload.queries[0]
    seq = _answers(_mediator_for(workload, jobs=1), query)
    par = _answers(_mediator_for(workload, jobs=jobs), query)
    assert Counter(par) == Counter(seq)
    # answers also arrive in the same order: branches merge in
    # submission order, which is the sequential enumeration order
    assert par == seq


@settings(max_examples=6, deadline=None)
@given(
    layers=st.integers(min_value=1, max_value=2),
    width=st.integers(min_value=1, max_value=2),
    calls_per_leaf=st.integers(min_value=1, max_value=3),
    jobs=st.integers(min_value=2, max_value=4),
)
def test_chain_answers_match_sequential(layers, width, calls_per_leaf, jobs):
    workload = generate_workload(
        layers=layers, width=width, calls_per_leaf=calls_per_leaf, fanout=2
    )
    query = workload.queries[0]
    seq = _answers(_mediator_for(workload, jobs=1), query)
    par = _answers(_mediator_for(workload, jobs=jobs), query)
    assert Counter(par) == Counter(seq)


def test_parity_through_remote_sites():
    workload = generate_fanout_workload(roots=4, fanout=3)
    query = workload.queries[0]
    seq = _answers(_mediator_for(workload, jobs=1, site="maryland"), query)
    par = _answers(_mediator_for(workload, jobs=4, site="maryland"), query)
    assert Counter(par) == Counter(seq)


def test_wave_prefetch_replays_roots():
    workload = generate_star_workload(calls=5, max_fanout=3, seed=2)
    mediator = _mediator_for(workload, jobs=4)
    result = mediator.query(workload.queries[0])
    metrics = mediator.metrics
    assert metrics.value("runtime.wave_calls") >= 1
    # inner calls of the nested loop are re-dispatched per outer binding;
    # every one of those replays hits the prefetched result
    assert metrics.value("runtime.prefetch_hits") >= 1
    assert result.execution.complete


# ---------------------------------------------------------------------------
# single-flight dedup inside branches
# ---------------------------------------------------------------------------


def test_branch_level_duplicate_calls_dedup():
    from repro.domains.base import simple_domain

    s_executions = []
    s_lock = threading.Lock()

    def r_impl(value):
        return [f"{value}~{j}" for j in range(4)]

    def w_impl(value):
        time.sleep(0.01)
        return ["k"]  # every branch converges on the same value

    def s_impl(value):
        with s_lock:
            s_executions.append(value)
        time.sleep(0.08)  # long enough that branches overlap in it
        return [f"{value}!1", f"{value}!2"]

    domain = simple_domain("d", {"r": r_impl, "w": w_impl, "s": s_impl})
    program = "q(A, S) :- in(M, d:r(A)) & in(O, d:w(M)) & in(S, d:s(O))."
    query = "?- q('x', S)."

    sequential = Mediator()
    sequential.register_domain(domain)
    sequential.load_program(program)
    seq = sequential.query(query).execution

    domain2 = simple_domain("d", {"r": r_impl, "w": w_impl, "s": s_impl})
    parallel = Mediator(jobs=4)
    parallel.register_domain(domain2)
    parallel.load_program(program)
    before = len(s_executions)
    par = parallel.query(query).execution

    assert Counter(par.answers) == Counter(seq.answers)
    # 4 concurrent branches all dispatch the identical ground call
    # d:s('k'); single-flight collapses the overlap
    assert parallel.metrics.value("runtime.singleflight.deduped") >= 1
    assert len(s_executions) - before < 4


# ---------------------------------------------------------------------------
# cancellation
# ---------------------------------------------------------------------------


def test_max_answers_cancels_outstanding_branches():
    from repro.domains.base import simple_domain

    total = 40

    def r_impl(value):
        return [f"{value}~{j}" for j in range(total)]

    def w_impl(value):
        time.sleep(0.005)
        return [f"{value}!done"]

    domain = simple_domain("d", {"r": r_impl, "w": w_impl})
    mediator = Mediator(jobs=2)
    mediator.register_domain(domain)
    mediator.load_program("q(A, O) :- in(M, d:r(A)) & in(O, d:w(M)).")
    result = mediator.query("?- q('x', O).", max_answers=3).execution
    assert len(result.answers) == 3
    assert not result.complete
    metrics = mediator.metrics
    assert metrics.value("runtime.cancelled") >= 1
    # the scheduler must not have burned through the whole fan-out
    assert metrics.value("runtime.dispatched") < total


def test_queue_watermark_recorded():
    workload = generate_fanout_workload(roots=2, fanout=8)
    mediator = _mediator_for(workload, jobs=2)
    mediator.query(workload.queries[0])
    assert mediator.metrics.value("runtime.queue.high_watermark") >= 1


# ---------------------------------------------------------------------------
# faults under concurrency
# ---------------------------------------------------------------------------


def test_transient_faults_retry_and_match_sequential():
    workload = generate_fanout_workload(roots=4, fanout=2)
    query = workload.queries[0]
    policy = RetryPolicy(max_attempts=10, base_backoff_ms=1.0)
    faults = FaultSpec(failure_rate=0.3, failure_latency_ms=1.0, seed=7)
    seq_med = _mediator_for(
        workload, jobs=1, site="maryland", faults=faults, policy=policy
    )
    seq = seq_med.query(query).execution

    workload2 = generate_fanout_workload(roots=4, fanout=2)
    par_med = _mediator_for(
        workload2, jobs=4, site="maryland",
        faults=FaultSpec(failure_rate=0.3, failure_latency_ms=1.0, seed=7),
        policy=policy,
    )
    par = par_med.query(query).execution
    assert Counter(par.answers) == Counter(seq.answers)
    assert par.complete
    # the injector fired on at least one attempt in each engine
    assert seq.retries >= 1
    assert par.retries >= 1


def test_down_site_raises_without_wedging():
    workload = generate_fanout_workload(roots=4, fanout=2)
    mediator = _mediator_for(
        workload,
        jobs=4,
        site="maryland",
        faults=FaultSpec(down=True),
        degrade=False,
    )
    with pytest.raises(
        (SourceUnavailableError, RetryExhaustedError, PermanentSourceError)
    ):
        mediator.query(workload.queries[0])
    # the pool wound down cleanly: a healthy follow-up query still works
    healthy = generate_star_workload(calls=3, max_fanout=2, seed=3)
    follow_up = _mediator_for(healthy, jobs=4)
    assert follow_up.query(healthy.queries[0]).execution.complete


def test_one_faulty_branch_fails_fast_without_poisoning_process():
    """A permanent failure in one branch aborts the query (fail-fast,
    matching sequential semantics) and leaves no dangling threads."""
    from repro.domains.base import simple_domain

    def r_impl(value):
        return [f"{value}~{j}" for j in range(6)]

    def w_impl(value):
        if value.endswith("~3"):
            raise PermanentSourceError("branch 3 is cursed")
        time.sleep(0.002)
        return [f"{value}!ok"]

    domain = simple_domain("d", {"r": r_impl, "w": w_impl})
    mediator = Mediator(jobs=3)
    mediator.register_domain(domain)
    mediator.load_program("q(A, O) :- in(M, d:r(A)) & in(O, d:w(M)).")
    before = threading.active_count()
    with pytest.raises(PermanentSourceError):
        mediator.query("?- q('x', O).")
    deadline = time.time() + 5.0
    while threading.active_count() > before and time.time() < deadline:
        time.sleep(0.01)
    assert threading.active_count() <= before


# ---------------------------------------------------------------------------
# engine selection + configuration
# ---------------------------------------------------------------------------


class TestMediatorJobs:
    def test_default_is_sequential(self):
        mediator = Mediator()
        assert mediator.jobs == 1
        assert type(mediator.executor).__name__ == "Executor"

    def test_jobs_constructor_installs_parallel_engine(self):
        mediator = Mediator(jobs=4)
        assert isinstance(mediator.executor, ParallelExecutor)
        assert mediator.jobs == 4

    def test_set_jobs_round_trip_preserves_knobs(self):
        mediator = Mediator(
            memoize_calls=True,
            retry_policy=RetryPolicy(max_attempts=2),
            degrade_on_failure=False,
        )
        mediator.set_jobs(8)
        assert isinstance(mediator.executor, ParallelExecutor)
        assert mediator.executor.memoize_calls
        assert mediator.executor.policy is not None
        assert mediator.executor.policy.max_attempts == 2
        assert not mediator.executor.degrade_on_failure
        assert mediator.executor.cim is mediator.cim
        assert mediator.executor.dcsm is mediator.dcsm
        mediator.set_jobs(1)
        assert type(mediator.executor).__name__ == "Executor"
        assert mediator.executor.memoize_calls

    def test_parallel_executor_delegates_when_nothing_to_overlap(self):
        # a single chain step has no independent work: results must still
        # be correct (delegation to the sequential path)
        workload = generate_workload(layers=1, width=1, calls_per_leaf=1)
        query = workload.queries[0]
        seq = _answers(_mediator_for(workload, jobs=1), query)
        par = _answers(_mediator_for(workload, jobs=4), query)
        assert Counter(par) == Counter(seq)

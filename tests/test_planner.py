"""Cost-guided plan search and the mediator's plan cache.

Covers the branch-and-bound search (`Rewriter.search`) against the
exhaustive enumerate-then-price baseline, the per-session estimator
memo, the constant-abstracted plan cache (hits skip rewriting; templates
instantiate correctly for new constants; value-dependent shapes replan),
and every invalidation path: program reload, `notify_source_changed`,
added invariants, and DCSM re-summarization.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mediator import Mediator
from repro.core.parser import parse_query
from repro.errors import PlanningError
from repro.workloads.generators import generate_star_workload, generate_workload


def _mediator_for(workload) -> Mediator:
    mediator = Mediator()
    mediator.register_domain(workload.domain)
    mediator.load_program(workload.program_text)
    return mediator


def _train_star(mediator: Mediator, workload, calls: int) -> None:
    """One observation per source function, without running the full
    (exponential) cross product."""
    domain = workload.domain.name
    for index in range(calls):
        mediator.query(
            f"?- in(O, {domain}:g{index}('s0')).", optimize=False
        )


def _pq_mediator() -> Mediator:
    """m(A, C): two chained calls whose answers depend on the constant."""
    from repro.domains.base import simple_domain

    p_table = {"a": [1, 2], "b": [3]}
    q_table = {1: ["x"], 2: ["y"], 3: ["z"]}
    d1 = simple_domain("d1", {"p": lambda a: p_table.get(a, [])})
    d2 = simple_domain("d2", {"q": lambda b: q_table.get(b, [])})
    mediator = Mediator()
    mediator.register_domain(d1)
    mediator.register_domain(d2)
    mediator.load_program("m(A, C) :- in(B, d1:p(A)) & in(C, d2:q(B)).")
    return mediator


# ---------------------------------------------------------------------------
# search vs exhaustive baseline
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    layers=st.integers(1, 2),
    width=st.integers(1, 2),
    calls_per_leaf=st.integers(1, 2),
    fanout=st.integers(1, 2),
    seed=st.integers(0, 4),
)
def test_guided_matches_exhaustive_on_generated_workloads(
    layers, width, calls_per_leaf, fanout, seed
):
    """Property: the pruned search prices its winner exactly like the
    exhaustive enumerate-then-price baseline prices its own."""
    workload = generate_workload(
        layers=layers,
        width=width,
        calls_per_leaf=calls_per_leaf,
        fanout=fanout,
        seed=seed,
    )
    mediator = _mediator_for(workload)
    for text in workload.queries:
        mediator.query(text, optimize=False)  # train the DCSM
    for text in workload.queries:
        query = parse_query(text)
        plans = mediator.rewriter.plans(query)
        winner, _ = mediator.cost_estimator.choose(plans, objective="all")
        result = mediator.rewriter.search(
            query, mediator.cost_estimator, objective="all"
        )
        if winner is None:
            assert not result.priced
        else:
            assert result.priced and result.vector is not None
            assert result.vector.t_all_ms == pytest.approx(winner.t_all_ms)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_guided_matches_exhaustive_on_small_stars(seed):
    """calls! < max_plans here, so enumeration is complete and the
    winning costs must agree exactly."""
    calls = 4
    workload = generate_star_workload(calls=calls, seed=seed)
    mediator = _mediator_for(workload)
    _train_star(mediator, workload, calls)
    query = parse_query(workload.queries[0])
    winner, _ = mediator.cost_estimator.choose(
        mediator.rewriter.plans(query), objective="all"
    )
    result = mediator.rewriter.search(
        query, mediator.cost_estimator, objective="all"
    )
    assert winner is not None and result.vector is not None
    assert result.vector.t_all_ms == pytest.approx(winner.t_all_ms)
    # the independent star tail resolves in one closed-form completion
    assert result.stats.tail_completions > 0
    assert result.stats.states_expanded <= calls


def test_guided_beats_exhaustive_lookups_on_wide_star():
    """Acceptance: >= 8 source calls -> >= 5x fewer estimator lookups,
    and a winner at least as cheap as the (truncated) baseline's."""
    calls = 8
    workload = generate_star_workload(calls=calls, seed=3)
    mediator = _mediator_for(workload)
    _train_star(mediator, workload, calls)
    query = parse_query(workload.queries[0])

    plans = mediator.rewriter.plans(query)
    before = mediator.metrics.value("dcsm.estimates") + mediator.metrics.value(
        "dcsm.estimates.failed"
    )
    winner, _ = mediator.cost_estimator.choose(plans, objective="all")
    baseline_lookups = (
        mediator.metrics.value("dcsm.estimates")
        + mediator.metrics.value("dcsm.estimates.failed")
        - before
    )

    session = mediator.cost_estimator.session()
    result = mediator.rewriter.search(
        query, mediator.cost_estimator, objective="all", session=session
    )
    assert winner is not None and result.vector is not None
    assert session.lookups * 5 <= baseline_lookups
    assert result.vector.t_all_ms <= winner.t_all_ms + 1e-9
    assert result.stats.tail_completions > 0


def test_search_unpriced_falls_back_to_first_ordering():
    """No statistics at all: search returns the same plan the old path
    would have run (the first enumerated ordering), unpriced."""
    mediator = _pq_mediator()
    query = parse_query("?- m('a', C).")
    result = mediator.rewriter.search(query, mediator.cost_estimator)
    assert not result.priced
    first = mediator.rewriter.plans(query)[0]

    def call_order(plan):
        # fresh-variable names differ between rewrites; the call sequence
        # is what identifies the ordering
        return [
            (s.atom.call.domain, s.atom.call.function) for s in plan.call_steps()
        ]

    assert call_order(result.plan) == call_order(first)


def test_search_raises_when_no_ordering_exists():
    mediator = _pq_mediator()
    query = parse_query("?- in(B, d1:p(A)).")  # A can never become bound
    with pytest.raises(PlanningError):
        mediator.rewriter.search(query, mediator.cost_estimator)


def test_search_respects_interactive_objective():
    """objective='first' must order the key lexicographically by T_first."""
    calls = 4
    workload = generate_star_workload(calls=calls, seed=1)
    mediator = _mediator_for(workload)
    _train_star(mediator, workload, calls)
    query = parse_query(workload.queries[0])
    winner, _ = mediator.cost_estimator.choose(
        mediator.rewriter.plans(query), objective="first"
    )
    result = mediator.rewriter.search(
        query, mediator.cost_estimator, objective="first"
    )
    assert winner is not None and result.vector is not None
    assert result.vector.t_first_ms == pytest.approx(winner.t_first_ms)


# ---------------------------------------------------------------------------
# plan cache: hits, instantiation, value dependence
# ---------------------------------------------------------------------------


def _warm(mediator: Mediator, text: str):
    """Seed statistics, then plan once so the cache holds a priced entry."""
    mediator.query(text, optimize=False)
    return mediator.query(text)


def test_repeated_query_hits_plan_cache_and_skips_rewriting():
    mediator = _pq_mediator()
    first = _warm(mediator, "?- m('a', C).")
    assert mediator.plan_cache.hits == 0 and len(mediator.plan_cache) == 1

    def boom(*args, **kwargs):
        raise AssertionError("cache hit must not invoke the rewriter")

    mediator.rewriter.search = boom  # type: ignore[method-assign]
    dcsm_before = mediator.metrics.value("dcsm.estimates")
    second = mediator.query("?- m('a', C).")
    assert sorted(second.column("C")) == sorted(first.column("C")) == ["x", "y"]
    assert mediator.plan_cache.hits == 1
    assert mediator.metrics.value("planner.plan_cache_hits") == 1
    # pricing is skipped too: the stored vector is reused verbatim
    assert mediator.metrics.value("dcsm.estimates") == dcsm_before
    assert second.chosen_estimate is not None


def test_template_instantiates_new_constants():
    """Same shape, different constant: the cached template must be
    re-instantiated, not replayed with the old constant."""
    mediator = _pq_mediator()
    _warm(mediator, "?- m('a', C).")
    hit = mediator.query("?- m('b', C).")
    assert mediator.plan_cache.hits == 1
    assert sorted(hit.column("C")) == ["z"]
    # and the original instantiation still answers correctly afterwards
    again = mediator.query("?- m('a', C).")
    assert sorted(again.column("C")) == ["x", "y"]


def test_value_dependent_queries_replan_per_constant():
    """Rule heads that carry constants specialise the unfolding, so the
    shape is value-dependent: each constant gets its own (exact) entry."""
    from repro.domains.base import simple_domain

    table = {"pa": [1, 2], "pb": [7]}
    d1 = simple_domain("d1", {"p": lambda key: table.get(key, [])})
    mediator = Mediator()
    mediator.register_domain(d1)
    mediator.load_program(
        """
        r(a, X) :- in(X, d1:p('pa')).
        r(b, X) :- in(X, d1:p('pb')).
        """
    )
    mediator.query("?- r(a, X).", optimize=False)
    mediator.query("?- r(b, X).", optimize=False)
    first = mediator.query("?- r(a, X).")
    assert sorted(first.column("X")) == [1, 2]
    other = mediator.query("?- r(b, X).")
    assert sorted(other.column("X")) == [7]  # must NOT reuse the 'a' plan
    # the 'b' search re-summarized the DCSM (new observations), so the
    # stale 'a' entry is correctly evicted; replanning restores it...
    replan = mediator.query("?- r(a, X).")
    assert sorted(replan.column("X")) == [1, 2]
    hits_before = mediator.plan_cache.hits
    # ...and an immediate repeat is served from the exact-key entry
    repeat = mediator.query("?- r(a, X).")
    assert sorted(repeat.column("X")) == [1, 2]
    assert mediator.plan_cache.hits == hits_before + 1


# ---------------------------------------------------------------------------
# plan cache: invalidation
# ---------------------------------------------------------------------------


def _assert_invalidated(mediator: Mediator, text: str) -> None:
    """The next identical query must miss (and replan successfully)."""
    hits_before = mediator.plan_cache.hits
    misses_before = mediator.plan_cache.misses
    result = mediator.query(text)
    assert result.cardinality >= 0
    assert mediator.plan_cache.hits == hits_before
    assert mediator.plan_cache.misses == misses_before + 1


def test_plan_cache_invalidated_by_program_reload():
    mediator = _pq_mediator()
    _warm(mediator, "?- m('a', C).")
    mediator.load_program("extra(A, B) :- in(B, d1:p(A)).")
    _assert_invalidated(mediator, "?- m('a', C).")


def test_plan_cache_invalidated_by_add_rule():
    mediator = _pq_mediator()
    _warm(mediator, "?- m('a', C).")
    mediator.add_rule("extra(A, B) :- in(B, d1:p(A)).")
    _assert_invalidated(mediator, "?- m('a', C).")


def test_plan_cache_invalidated_by_added_invariant():
    mediator = _pq_mediator()
    _warm(mediator, "?- m('a', C).")
    mediator.add_invariant("A <= B & B <= A => d1:p(A) = d1:p(B).")
    _assert_invalidated(mediator, "?- m('a', C).")


def test_plan_cache_invalidated_by_source_change():
    mediator = _pq_mediator()
    _warm(mediator, "?- m('a', C).")
    assert len(mediator.plan_cache) == 1
    mediator.notify_source_changed("d1", "p")
    assert len(mediator.plan_cache) == 0
    _assert_invalidated(mediator, "?- m('a', C).")


def test_plan_cache_survives_unrelated_source_change():
    mediator = _pq_mediator()
    _warm(mediator, "?- m('a', C).")
    mediator.notify_source_changed("elsewhere")
    mediator.query("?- m('a', C).")
    assert mediator.plan_cache.hits == 1


def test_plan_cache_invalidated_by_dcsm_summarize():
    mediator = _pq_mediator()
    _warm(mediator, "?- m('a', C).")
    mediator.dcsm.summarize()  # bumps the statistics version
    _assert_invalidated(mediator, "?- m('a', C).")


# ---------------------------------------------------------------------------
# surfaces
# ---------------------------------------------------------------------------


def test_planner_metrics_and_stats_surface():
    mediator = _pq_mediator()
    _warm(mediator, "?- m('a', C).")
    mediator.query("?- m('a', C).")
    assert mediator.metrics.value("planner.searches") >= 1
    assert mediator.metrics.value("planner.plan_cache_hits") == 1
    assert mediator.metrics.value("planner.plan_cache_misses") >= 1
    rendered = mediator.metrics.render()
    assert "planner.plan_cache_hits" in rendered

    from repro.cli import _planner_summary

    summary = _planner_summary(mediator)
    assert "plan cache 1 hits" in summary


def test_guided_search_can_be_disabled():
    mediator = _pq_mediator()
    mediator.guided_search = False
    mediator.query("?- m('a', C).", optimize=False)
    result = mediator.query("?- m('a', C).")
    assert sorted(result.column("C")) == ["x", "y"]
    assert mediator.metrics.value("planner.searches") == 0
    assert len(mediator.plan_cache) == 0

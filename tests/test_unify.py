"""Unit + property tests for substitutions and unification."""

from hypothesis import given, strategies as st

import pytest

from repro.core.terms import AttrPath, Constant, Row, Variable
from repro.core.unify import (
    compose,
    fresh_variable,
    is_bound,
    rename_apart,
    resolve,
    resolve_ground,
    unify,
    unify_sequences,
    walk,
)
from repro.errors import NotGroundError

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestWalkResolve:
    def test_walk_chases_chains(self):
        subst = {X: Y, Y: Constant(1)}
        assert walk(X, subst) == Constant(1)

    def test_walk_stops_at_unbound(self):
        assert walk(X, {}) == X

    def test_resolve_attrpath_over_row(self):
        row = Row([("loc", "depot")])
        subst = {X: Constant(row)}
        path = AttrPath(X, ("loc",))
        assert resolve(path, subst) == Constant("depot")

    def test_resolve_attrpath_unbound_base_stays_symbolic(self):
        path = AttrPath(X, ("loc",))
        assert resolve(path, {}) == path

    def test_resolve_attrpath_renamed_base(self):
        path = AttrPath(X, (1,))
        resolved = resolve(path, {X: Y})
        assert resolved == AttrPath(Y, (1,))

    def test_resolve_ground_raises_on_unbound(self):
        with pytest.raises(NotGroundError):
            resolve_ground(X, {})

    def test_resolve_ground_value(self):
        assert resolve_ground(X, {X: Constant(9)}) == 9

    def test_is_bound(self):
        assert is_bound(Constant(1), {})
        assert is_bound(X, {X: Constant(1)})
        assert not is_bound(X, {})


class TestUnify:
    def test_var_with_constant(self):
        subst = unify(X, Constant(3), {})
        assert subst is not None and subst[X] == Constant(3)

    def test_constant_mismatch(self):
        assert unify(Constant(1), Constant(2), {}) is None

    def test_constant_match(self):
        assert unify(Constant(1), Constant(1), {}) == {}

    def test_var_with_var(self):
        subst = unify(X, Y, {})
        assert subst is not None
        # both now resolve to the same representative
        assert resolve(X, subst) == resolve(Y, subst)

    def test_respects_existing_bindings(self):
        subst = unify(X, Constant(1), {})
        assert unify(X, Constant(2), subst) is None
        assert unify(X, Constant(1), subst) is not None

    def test_does_not_mutate_input(self):
        base: dict = {}
        unify(X, Constant(1), base)
        assert base == {}

    def test_sequences(self):
        subst = unify_sequences([X, Y], [Constant(1), Constant(2)], {})
        assert subst[X] == Constant(1)
        assert subst[Y] == Constant(2)

    def test_sequences_length_mismatch(self):
        assert unify_sequences([X], [Constant(1), Constant(2)], {}) is None

    def test_sequences_shared_variable(self):
        assert unify_sequences([X, X], [Constant(1), Constant(2)], {}) is None
        ok = unify_sequences([X, X], [Constant(1), Constant(1)], {})
        assert ok is not None

    def test_attrpath_resolvable_unifies(self):
        row = Row([("a", 5)])
        subst = {Y: Constant(row)}
        path = AttrPath(Y, ("a",))
        out = unify(path, X, subst)
        assert out is not None
        assert resolve(X, out) == Constant(5)


class TestRenaming:
    def test_fresh_variables_are_distinct(self):
        a = fresh_variable("X")
        b = fresh_variable("X")
        assert a != b
        assert "#" in a.name

    def test_rename_apart_covers_all(self):
        renaming = rename_apart([X, Y])
        assert set(renaming) == {X, Y}
        assert renaming[X] != renaming[Y]

    def test_compose(self):
        inner = {X: Y}
        outer = {Y: Constant(1)}
        combined = compose(outer, inner)
        assert resolve(X, combined) == Constant(1)


# -- property-based ---------------------------------------------------------

values = st.one_of(st.integers(-50, 50), st.text(max_size=4), st.booleans())
var_names = st.sampled_from(["A", "B", "C", "D"])
terms = st.one_of(
    values.map(Constant),
    var_names.map(Variable),
)


@given(terms, terms)
def test_unify_is_symmetric_in_success(t1, t2):
    left = unify(t1, t2, {})
    right = unify(t2, t1, {})
    assert (left is None) == (right is None)


@given(terms)
def test_unify_with_self_is_identity(t):
    assert unify(t, t, {}) == {}


@given(terms, terms)
def test_unifier_actually_unifies(t1, t2):
    subst = unify(t1, t2, {})
    if subst is not None:
        assert resolve(t1, subst) == resolve(t2, subst)


@given(st.lists(st.tuples(var_names.map(Variable), values.map(Constant)), max_size=4))
def test_resolve_idempotent(bindings):
    subst = dict(bindings)
    for var in subst:
        once = resolve(var, subst)
        assert resolve(once, subst) == once

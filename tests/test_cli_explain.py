"""Tests for EXPLAIN and the interactive shell."""

import io

import pytest

from repro.cli import MediatorShell, _build_demo, main
from repro.core.explain import explain, explain_last_execution
from repro.errors import ReproError


@pytest.fixture
def shell(m1_mediator) -> MediatorShell:
    return MediatorShell(m1_mediator, stdin=io.StringIO(), stdout=io.StringIO())


def output_of(shell: MediatorShell) -> str:
    return shell.stdout.getvalue()


class TestExplain:
    def test_lists_all_plans(self, m1_mediator):
        report = explain(m1_mediator, "?- m(a, C).")
        assert "candidate plan(s)" in report
        assert report.count("Plan ") >= 4
        assert "adornments:" in report

    def test_untrained_notes_missing_statistics(self, m1_mediator):
        report = explain(m1_mediator, "?- m(a, C).")
        assert "no plan could be priced" in report

    def test_trained_shows_winner_and_vectors(self, m1_mediator):
        m1_mediator.train(["?- m(a, C)."])
        for plan in m1_mediator.plans("?- m(a, C)."):
            m1_mediator.query("?- m(a, C).", plan=plan)
        report = explain(m1_mediator, "?- m(a, C).")
        assert "<== chosen" in report
        assert "cost(" in report
        assert "Tf=" in report

    def test_objective_first(self, m1_mediator):
        m1_mediator.train(["?- m(a, C)."])
        report = explain(m1_mediator, "?- m(a, C).", objective="first")
        assert "time to first answer" in report

    def test_post_mortem(self, m1_mediator):
        result = m1_mediator.query("?- m(a, C).")
        text = explain_last_execution(result)
        assert "T_first" in text and "T_all" in text
        assert "source call" in text


class TestShellCommands:
    def test_query_round_trip(self, shell):
        shell.handle("?- m(a, C).")
        out = output_of(shell)
        assert "x" in out and "y" in out
        assert "EXECUTED" in out

    def test_add_rule_then_query(self, shell):
        shell.handle("twice(C) :- m(a, C).")
        shell.handle("?- twice(C).")
        assert "rule added." in output_of(shell)

    def test_plans_command(self, shell):
        shell.handle(":plans ?- m(a, C).")
        assert "Plan[" in output_of(shell)

    def test_explain_command(self, shell):
        shell.handle(":explain ?- m(a, C).")
        assert "EXPLAIN" in output_of(shell)

    def test_stats_command(self, shell):
        shell.handle("?- m(a, C).")
        shell.handle(":stats")
        out = output_of(shell)
        assert "DCSM:" in out and "CIM:" in out

    def test_cim_toggle(self, shell):
        shell.handle(":cim on")
        shell.handle("?- m(a, C).")
        shell.handle("?- m(a, C).")
        assert shell.mediator.cim.stats.exact_hits > 0
        shell.handle(":cim off")
        assert "CIM routing off." in output_of(shell)

    def test_invariant_command(self, shell):
        shell.handle(":invariant d1:p_fb(X) = d1:p_fb(X).")
        assert "invariant added." in output_of(shell)

    def test_parse_error_reported_not_raised(self, shell):
        shell.handle("?- m(a C).")
        assert "error:" in output_of(shell)

    def test_unknown_command(self, shell):
        shell.handle(":frobnicate")
        assert "unknown command" in output_of(shell)

    def test_help(self, shell):
        shell.handle(":help")
        assert ":demo" in output_of(shell)

    def test_comments_and_blank_lines_ignored(self, shell):
        shell.handle("")
        shell.handle("% comment")
        shell.handle("# comment")
        assert output_of(shell) == ""

    def test_save_and_load_stats(self, shell, tmp_path):
        shell.handle("?- m(a, C).")
        path = str(tmp_path / "stats.json")
        shell.handle(f":save-stats {path}")
        shell.handle(f":load-stats {path}")
        out = output_of(shell)
        assert "saved" in out and "loaded" in out

    def test_domains_listing(self, shell):
        shell.handle(":domains")
        out = output_of(shell)
        assert "d1" in out and "p_ff" in out

    def test_load_program_file(self, shell, tmp_path):
        path = tmp_path / "extra.med"
        path.write_text("extra(X) :- m(a, X).\n")
        shell.handle(f":load {path}")
        shell.handle("?- extra(X).")
        assert "loaded" in output_of(shell)


class TestShellLifecycle:
    def test_run_until_quit(self, m1_mediator):
        stdin = io.StringIO("?- m(a, C).\n:quit\n")
        shell = MediatorShell(m1_mediator, stdin=stdin, stdout=io.StringIO())
        shell.run()
        assert "bye." in output_of(shell)
        assert not shell.running

    def test_run_until_eof(self, m1_mediator):
        shell = MediatorShell(m1_mediator, stdin=io.StringIO(""), stdout=io.StringIO())
        shell.run()  # terminates on EOF without error

    def test_demo_command(self):
        shell = MediatorShell(stdin=io.StringIO(), stdout=io.StringIO())
        shell.handle(":demo rope")
        shell.handle("?- actors(A).")
        out = output_of(shell)
        assert "demo 'rope' loaded" in out
        assert "stewart" in out

    def test_demo_logistics(self):
        shell = MediatorShell(stdin=io.StringIO(), stdout=io.StringIO())
        shell.handle(":demo logistics")
        assert "ingres" in output_of(shell)

    def test_unknown_demo(self):
        with pytest.raises(ReproError):
            _build_demo("atlantis")


class TestMainEntry:
    def test_main_with_demo_and_quit(self, monkeypatch, capsys):
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO(":quit\n"))
        code = main(["--demo", "rope"])
        assert code == 0
        assert "bye." in capsys.readouterr().out

"""The serving layer: protocol, admission, warmer, server, and CLI.

Fast unit tests run unmarked in tier 1.  The heavier soak/load test at
the bottom carries ``@pytest.mark.serving`` and only runs when
``REPRO_SERVING_SOAK=1`` (the CI serving job sets it), keeping tier-1
runtime flat.
"""

from __future__ import annotations

import io
import os
import threading
import time

import pytest

from repro.errors import ReproError
from repro.serving import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    CacheWarmer,
    MediatorServer,
    ServingClient,
    ServingConfig,
    decode_message,
    encode_message,
    run_load,
)
from repro.serving.admission import (
    REASON_DRAINING,
    REASON_QUEUE_FULL,
    REASON_TENANT_QUOTA,
)
from repro.serving.protocol import ProtocolError, Request


# -- protocol -----------------------------------------------------------------


def test_message_round_trip():
    message = {"op": "query", "id": "r1", "tenant": "acme", "query": "?- m(A, C)."}
    assert decode_message(encode_message(message).strip()) == message


def test_decode_rejects_non_object():
    with pytest.raises(ProtocolError):
        decode_message(b"[1, 2, 3]")
    with pytest.raises(ProtocolError):
        decode_message(b"not json at all")


def test_request_parse_validates():
    request = Request.parse(
        {"op": "query", "id": "r9", "tenant": "t", "query": "?- m(A, C)."}
    )
    assert request.id == "r9" and request.tenant == "t"
    with pytest.raises(ProtocolError):
        Request.parse({"op": "nope"})
    with pytest.raises(ProtocolError):
        Request.parse({"op": "query"})  # query text required
    with pytest.raises(ProtocolError):
        Request.parse({"op": "query", "query": "?- m(A, C).", "mode": "weird"})
    with pytest.raises(ProtocolError):
        Request.parse({"op": "query", "query": "?- m(A, C).", "max_answers": 0})
    with pytest.raises(ProtocolError):
        Request.parse({"op": "query", "query": "?- m(A, C).", "tenant": ""})


def test_request_parse_assigns_anonymous_ids():
    first = Request.parse({"op": "ping"})
    second = Request.parse({"op": "ping"})
    assert first.id != second.id


def test_request_parse_deadline_and_cancel_validation():
    request = Request.parse(
        {"op": "query", "query": "?- m(A, C).", "deadline_ms": 250}
    )
    assert request.deadline_ms == 250.0
    for bad in (0, -5, "soon", True):
        with pytest.raises(ProtocolError):
            Request.parse(
                {"op": "query", "query": "?- m(A, C).", "deadline_ms": bad}
            )
    cancel = Request.parse({"op": "cancel", "target": "r7"})
    assert cancel.target == "r7"
    with pytest.raises(ProtocolError):
        Request.parse({"op": "cancel"})
    with pytest.raises(ProtocolError):
        Request.parse({"op": "cancel", "target": ""})


# -- admission control --------------------------------------------------------


def test_admission_global_bound_rejects_with_retry_hint():
    controller = AdmissionController(
        AdmissionPolicy(max_queue_depth=2, max_tenant_depth=2, retry_after_ms=75.0)
    )
    controller.submit("a", 1)
    controller.submit("a", 2)
    with pytest.raises(AdmissionRejected) as exc_info:
        controller.submit("b", 3)
    assert exc_info.value.reason == REASON_QUEUE_FULL
    assert exc_info.value.retry_after_ms == 75.0


def test_admission_tenant_quota_before_global():
    controller = AdmissionController(
        AdmissionPolicy(max_queue_depth=10, max_tenant_depth=1)
    )
    controller.submit("a", 1)
    with pytest.raises(AdmissionRejected) as exc_info:
        controller.submit("a", 2)
    assert exc_info.value.reason == REASON_TENANT_QUOTA
    # another tenant still fits
    controller.submit("b", 3)


def test_admission_weighted_fair_dequeue():
    policy = AdmissionPolicy(
        max_queue_depth=64, max_tenant_depth=32, weights={"heavy": 2.0}
    )
    controller = AdmissionController(policy)
    for index in range(6):
        controller.submit("heavy", f"h{index}")
        controller.submit("light", f"l{index}")
    order = []
    for _ in range(12):
        ticket = controller.next(timeout=0.1)
        assert ticket is not None
        order.append(ticket.tenant)
        controller.task_done(ticket)
    # weight 2 drains twice per weight-1 drain: in any prefix the heavy
    # tenant should never trail the light one
    heavy_in_first_six = order[:6].count("heavy")
    assert heavy_in_first_six >= 4


def test_admission_idle_tenant_gets_no_banked_burst():
    controller = AdmissionController(
        AdmissionPolicy(max_queue_depth=64, max_tenant_depth=32)
    )
    # tenant a drains 10 requests while b is idle
    for index in range(10):
        controller.submit("a", index)
        ticket = controller.next(timeout=0.1)
        controller.task_done(ticket)
    # now both tenants are backlogged; b must interleave, not burst
    for index in range(4):
        controller.submit("a", f"a{index}")
        controller.submit("b", f"b{index}")
    order = []
    for _ in range(8):
        ticket = controller.next(timeout=0.1)
        order.append(ticket.tenant)
        controller.task_done(ticket)
    assert order[:2].count("b") <= 1  # no catch-up burst at the front
    assert order.count("b") == 4


def test_admission_drain_rejects_new_completes_queued():
    controller = AdmissionController(AdmissionPolicy(max_queue_depth=8))
    controller.submit("a", 1)
    controller.begin_drain()
    with pytest.raises(AdmissionRejected) as exc_info:
        controller.submit("a", 2)
    assert exc_info.value.reason == REASON_DRAINING
    ticket = controller.next(timeout=0.1)
    assert ticket is not None and ticket.payload == 1
    assert not controller.wait_drained(timeout=0.05)  # still in flight
    controller.task_done(ticket)
    assert controller.wait_drained(timeout=1.0)


def test_admission_high_watermark_metric_tracks_peak_depth():
    from repro.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    controller = AdmissionController(
        AdmissionPolicy(max_queue_depth=8), metrics=metrics
    )
    for index in range(3):
        controller.submit("a", index)
    ticket = controller.next(timeout=0.1)
    controller.task_done(ticket)
    controller.submit("b", "x")  # depth back to 3, watermark unchanged
    assert metrics.value("serving.queue.high_watermark") == 3.0
    assert controller.high_watermark == 3


def test_task_done_without_next_raises():
    controller = AdmissionController()
    ticket = controller.submit("a", 1)
    with pytest.raises(ReproError):
        controller.task_done(ticket)


# -- cache warmer -------------------------------------------------------------


def test_warmer_warms_once_at_threshold():
    warmed = []
    warmer = CacheWarmer(
        lambda scope, text: warmed.append((scope, text)), threshold=2
    )
    warmer.start()
    try:
        # same shape, different constants: one template, warmed once
        warmer.observe("", "?- m('a', C).")
        warmer.observe("", "?- m('b', C).")
        warmer.observe("", "?- m('c', C).")
        assert warmer.flush(timeout=5.0)
    finally:
        warmer.stop()
    assert len(warmed) == 1


def test_warmer_scopes_templates_per_tenant():
    warmed = []
    warmer = CacheWarmer(
        lambda scope, text: warmed.append(scope), threshold=2
    )
    warmer.start()
    try:
        for _ in range(2):
            warmer.observe("t1", "?- m(A, C).")
            warmer.observe("t2", "?- m(A, C).")
        assert warmer.flush(timeout=5.0)
    finally:
        warmer.stop()
    assert sorted(warmed) == ["t1", "t2"]


def test_warmer_bounded_queue_drops_oldest():
    from repro.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    warmer = CacheWarmer(
        lambda scope, text: None, threshold=1, capacity=4, metrics=metrics
    )
    # not started: observations pile up and overflow the bound
    for index in range(10):
        warmer.observe("", f"?- m('c{index}', C).")
    assert warmer.backlog == 4
    assert metrics.value("serving.warmer.dropped") == 6.0


def test_warmer_survives_failing_execute():
    def boom(scope: str, text: str) -> None:
        raise RuntimeError("source down")

    from repro.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    warmer = CacheWarmer(boom, threshold=1, metrics=metrics)
    warmer.start()
    try:
        warmer.observe("", "?- m(A, C).")
        assert warmer.flush(timeout=5.0)
    finally:
        warmer.stop()
    assert metrics.value("serving.warmer.errors") == 1.0


def test_warmer_ignores_unparsable_queries():
    warmed = []
    warmer = CacheWarmer(lambda s, t: warmed.append(t), threshold=1)
    warmer.start()
    try:
        warmer.observe("", "this is not a query")
        warmer.observe("", "?- m(A, C).")
        assert warmer.flush(timeout=5.0)
    finally:
        warmer.stop()
    assert warmed == ["?- m(A, C)."]


# -- server end to end --------------------------------------------------------


@pytest.fixture
def served(m1_mediator):
    config = ServingConfig(workers=2, warm_threshold=2)
    server = MediatorServer(m1_mediator, config=config).start()
    try:
        yield server, m1_mediator
    finally:
        server.drain(timeout=10.0)


def test_server_answers_match_direct_query(served, m1_mediator):
    server, mediator = served
    host, port = server.address
    direct = {tuple(a) for a in mediator.query("?- m(A, C).").answers}
    with ServingClient(host, port, tenant="acme") as client:
        response = client.query("?- m(A, C).")
    assert response["status"] == "ok"
    served_answers = {tuple(answer) for answer in response["answers"]}
    assert served_answers == {tuple(a) for a in direct}
    assert response["cardinality"] == len(direct)
    assert response["complete"] is True
    assert response["queue_wait_ms"] >= 0.0


def test_server_ping_stats_and_error_responses(served):
    server, _ = served
    host, port = server.address
    with ServingClient(host, port) as client:
        assert client.ping()["pong"] is True
        stats = client.stats()["stats"]
        assert "cache" in stats and "serving" in stats
        bad = client.query("?- undefined_predicate(X).")
        assert bad["status"] == "error"
        assert bad["kind"] == "PlanningError"


def test_server_concurrent_tenants_share_caches(m1_mediator):
    server = MediatorServer(
        m1_mediator, config=ServingConfig(workers=4)
    ).start()
    try:
        host, port = server.address
        results = []
        errors = []

        def session(tenant: str) -> None:
            try:
                with ServingClient(host, port, tenant=tenant) as client:
                    for _ in range(5):
                        response = client.query("?- m(A, C).")
                        results.append(response["status"])
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=session, args=(f"tenant{i}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert results.count("ok") == 20
        # all four tenants hit ONE shared mediator: its CIM saw every call
        summary = server.drain(timeout=10.0)
        assert summary["completed"] == 20.0
        assert summary["dropped_in_flight"] == 0.0
    finally:
        server.drain(timeout=10.0)


def test_server_rejects_with_backpressure_then_recovers(m1_mediator):
    config = ServingConfig(
        workers=1,
        admission=AdmissionPolicy(
            max_queue_depth=2, max_tenant_depth=2, retry_after_ms=20.0
        ),
    )
    server = MediatorServer(m1_mediator, config=config).start()
    try:
        host, port = server.address
        # the sync client waits per request; raw pipelining floods the queue
        statuses = _pipeline_burst(host, port, "flood", "?- m(A, C).", count=12)
        assert "rejected" in statuses  # backpressure fired
        rejected = [s for s in statuses if s == "rejected"]
        ok = [s for s in statuses if s == "ok"]
        assert len(rejected) + len(ok) == 12
        # watermark never exceeded the configured bound
        assert server.admission.high_watermark <= 2
        # after the burst drains, a fresh request is admitted again
        with ServingClient(host, port, tenant="flood") as client:
            assert client.query("?- m(A, C).")["status"] == "ok"
    finally:
        server.drain(timeout=10.0)


def _pipeline_burst(
    host: str, port: int, tenant: str, query: str, count: int
) -> list[str]:
    """Fire ``count`` pipelined requests on one socket, return statuses."""
    import socket as socket_mod

    sock = socket_mod.create_connection((host, port), timeout=10.0)
    try:
        payload = b"".join(
            encode_message(
                {"op": "query", "id": f"b{i}", "tenant": tenant, "query": query}
            )
            for i in range(count)
        )
        sock.sendall(payload)
        statuses: list[str] = []
        buffer = b""
        while len(statuses) < count:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    statuses.append(decode_message(line)["status"])
        return statuses
    finally:
        sock.close()


def test_server_graceful_drain_completes_inflight(m1_mediator):
    server = MediatorServer(
        m1_mediator, config=ServingConfig(workers=2)
    ).start()
    host, port = server.address
    sock_statuses = []

    def burst() -> None:
        sock_statuses.extend(
            _pipeline_burst(host, port, "t", "?- m(A, C).", count=6)
        )

    thread = threading.Thread(target=burst)
    thread.start()
    time.sleep(0.05)  # let some requests land in the queue
    summary = server.drain(timeout=15.0)
    thread.join(timeout=15.0)
    assert summary["dropped_in_flight"] == 0.0
    # every admitted request completed; the rest were rejected as draining
    assert all(s in ("ok", "rejected") for s in sock_statuses)
    # post-drain requests get nothing: the connection is refused, or the
    # socket accepts at TCP level and then yields no response
    try:
        post_drain = _pipeline_burst(host, port, "t", "?- m(A, C).", count=1)
    except OSError:
        post_drain = []
    assert post_drain == []


def test_server_isolated_tenants_do_not_share_caches(m1_mediator_factory):
    config = ServingConfig(workers=2, isolate_tenants=True)
    server = MediatorServer(
        mediator_factory=m1_mediator_factory, config=config
    ).start()
    try:
        host, port = server.address
        with ServingClient(host, port, tenant="t1") as client:
            assert client.query("?- m(A, C).")["status"] == "ok"
        with ServingClient(host, port, tenant="t2") as client:
            assert client.query("?- m(A, C).")["status"] == "ok"
        first = server.mediator_for("t1")
        second = server.mediator_for("t2")
        assert first is not second
        assert first.metrics.value("mediator.queries") == 1.0
        assert second.metrics.value("mediator.queries") == 1.0
    finally:
        server.drain(timeout=10.0)


def test_server_warmer_populates_shared_caches(m1_mediator):
    config = ServingConfig(workers=1, warm_threshold=2)
    server = MediatorServer(m1_mediator, config=config).start()
    try:
        host, port = server.address
        with ServingClient(host, port) as client:
            client.query("?- m('a', C).")
            client.query("?- m('b', C).")
        assert server.warmer is not None
        assert server.warmer.flush(timeout=10.0)
        assert server.metrics.value("serving.warmer.warmed") >= 1.0
    finally:
        server.drain(timeout=10.0)


@pytest.fixture
def m1_mediator_factory():
    """A factory producing fresh, independent M1 mediators."""
    return _fresh_m1


def _fresh_m1():
    from repro.core.mediator import Mediator
    from repro.domains.base import simple_domain

    p_pairs = [("a", 1), ("a", 2), ("b", 3)]
    q_pairs = [(1, "x"), (2, "y"), (3, "z")]
    d1 = simple_domain(
        "d1",
        {
            "p_ff": lambda: ([tuple(pair) for pair in p_pairs], 4.0, 10.0),
            "p_fb": lambda b: ([a for a, bb in p_pairs if bb == b], 8.0, 10.0),
            "p_bb": lambda a, b: ([True] if (a, b) in p_pairs else [], 10.0, 10.0),
        },
    )
    d2 = simple_domain(
        "d2",
        {
            "q_ff": lambda: ([tuple(pair) for pair in q_pairs], 40.0, 100.0),
            "q_bf": lambda b: ([c for bb, c in q_pairs if bb == b], 8.0, 10.0),
        },
    )
    mediator = Mediator()
    mediator.register_domain(d1)
    mediator.register_domain(d2)
    mediator.load_program(
        """
        m(A, C) :- p(A, B) & q(B, C).
        p(A, B) :- in(Ans, d1:p_ff()), =($Ans.1, A), =($Ans.2, B).
        p(A, B) :- in(A, d1:p_fb(B)).
        q(B, C) :- in(Ans, d2:q_ff()), =($Ans.1, B), =($Ans.2, C).
        q(B, C) :- in(C, d2:q_bf(B)).
        """
    )
    return mediator


# -- CLI ----------------------------------------------------------------------


def test_cli_serve_and_load_round_trip():
    from repro.cli import load_main, serve_main

    out = io.StringIO()
    result: dict = {}

    def run_server() -> None:
        result["rc"] = serve_main(
            ["--workers", "2", "--port", "0", "--max-seconds", "8"], out
        )

    thread = threading.Thread(target=run_server, daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    port = None
    while time.monotonic() < deadline:
        text = out.getvalue()
        if " on " in text:
            port = int(text.split(" on ", 1)[1].split()[0].rsplit(":", 1)[1])
            break
        time.sleep(0.05)
    assert port is not None, f"server never printed its address: {out.getvalue()!r}"
    load_out = io.StringIO()
    rc = load_main(
        [
            "--port", str(port), "--tenant", "a", "--tenant", "b",
            "--requests", "10", "--connections", "2", "--json",
        ],
        load_out,
    )
    assert rc == 0
    import json

    report = json.loads(load_out.getvalue())
    assert report["ok"] == 10
    assert report["errors"] == 0
    assert set(report["per_tenant"]) == {"a", "b"}
    thread.join(timeout=15.0)
    assert result["rc"] == 0
    assert "0 dropped in flight" in out.getvalue()


def test_cli_stats_json_is_machine_readable():
    import json

    from repro.cli import stats_main

    out = io.StringIO()
    rc = stats_main(["--json", "--cim", "?- actors(A)."], out)
    assert rc == 0
    payload = json.loads(out.getvalue())
    assert payload["queries_run"] == 1
    assert payload["answers"] > 0
    assert payload["cim"]["calls"] > 0
    assert "plan" in payload["cache"] and "subplan" in payload["cache"]
    assert "metrics" in payload


def test_run_load_reports_per_tenant_counts(m1_mediator):
    server = MediatorServer(
        m1_mediator, config=ServingConfig(workers=2)
    ).start()
    try:
        host, port = server.address
        plan = [("alpha", "?- m(A, C)."), ("beta", "?- m(A, C).")] * 5
        report = run_load(host, port, plan, connections=2)
        assert report.sent == 10
        assert report.ok == 10
        assert report.per_tenant["alpha"]["ok"] == 5
        assert report.per_tenant["beta"]["ok"] == 5
        assert report.qps > 0
    finally:
        server.drain(timeout=10.0)


# -- adaptive admission -------------------------------------------------------


def test_admission_ewma_feeds_adaptive_retry_hint():
    controller = AdmissionController(
        AdmissionPolicy(retry_after_ms=10.0, max_retry_after_ms=500.0),
        workers=2,
    )
    # cold EWMA: the static floor
    assert controller.retry_after_hint() == 10.0
    controller.record_service_time(100.0)
    assert controller.ewma_service_ms == 100.0
    controller.record_service_time(200.0)  # alpha 0.2 -> 120
    assert abs(controller.ewma_service_ms - 120.0) < 1e-9
    # empty queue: still the floor
    assert controller.retry_after_hint() == 10.0
    for i in range(4):
        controller.submit("t", i)
    # backlog 4 x 120ms / 2 workers = 240ms expected drain
    assert abs(controller.retry_after_hint() - 240.0) < 1e-6
    # a pathological EWMA clamps to the ceiling
    for _ in range(30):
        controller.record_service_time(10_000.0)
    assert controller.retry_after_hint() == 500.0


def test_admission_shed_mode_drops_lowest_weight_first():
    policy = AdmissionPolicy(
        shed_ewma_ms=50.0, weights={"gold": 4.0, "bronze": 1.0}
    )
    controller = AdmissionController(policy)
    controller.record_service_time(10.0)
    controller.submit("bronze", 1)  # below threshold: admitted
    for _ in range(30):
        controller.record_service_time(500.0)
    assert controller.shedding
    controller.submit("gold", 2)  # high weight keeps flowing
    with pytest.raises(AdmissionRejected) as rejection:
        controller.submit("bronze", 3)
    assert rejection.value.reason == "shed"
    # drain, then bronze is still shed (bottom of the weight table)
    for _ in range(2):
        ticket = controller.next(timeout=1.0)
        assert ticket is not None
        controller.task_done(ticket)
    with pytest.raises(AdmissionRejected):
        controller.submit("bronze", 4)
    controller.submit("gold", 5)


def test_admission_queued_ticket_expires_without_executing():
    expired = []
    controller = AdmissionController(on_expired=expired.append)
    doomed = controller.submit(
        "t", "dead", deadline_at=time.monotonic() + 0.02
    )
    live = controller.submit("t", "live")
    time.sleep(0.05)
    ticket = controller.next(timeout=1.0)
    assert ticket is live  # the expired ticket is reaped, never returned
    assert expired == [doomed] and doomed.expired
    controller.task_done(ticket)
    assert controller.depth == 0
    # reap_expired is the watchdog's direct hook
    doomed2 = controller.submit(
        "t", "dead2", deadline_at=time.monotonic() - 0.01
    )
    assert controller.reap_expired() == [doomed2]
    assert controller.depth == 0


def test_admission_remove_pulls_queued_only():
    controller = AdmissionController()
    ticket = controller.submit("t", 1)
    assert controller.remove(ticket) is True and ticket.cancelled
    assert controller.depth == 0
    assert controller.remove(ticket) is False  # already gone
    second = controller.submit("t", 2)
    taken = controller.next(timeout=1.0)
    assert taken is second
    assert controller.remove(second) is False  # in flight, not queued
    controller.task_done(second)


# -- request lifecycle: deadlines, cancellation, partials ---------------------


def _slow_server(wall_ms: float = 25.0, **config_kwargs):
    from repro.workloads.serving_chaos import build_serving_testbed

    testbed = build_serving_testbed(relations=3, wall_ms=wall_ms)
    config = ServingConfig(**{"workers": 2, **config_kwargs})
    server = MediatorServer(testbed.mediator, config=config).start()
    return testbed, server


def test_server_cancel_inflight_stops_dialing():
    testbed, server = _slow_server()
    try:
        host, port = server.address
        with ServingClient(host, port) as client:
            target = client.send(
                {"op": "query", "query": testbed.chain_query(key="c1")}
            )
            time.sleep(0.04)  # let it start dialing
            ack = client.cancel(target)
            assert ack["status"] == "ok" and ack["cancelled"] is True
            response = client.wait(target, timeout_s=10.0)
            assert response["status"] == "cancelled"
            assert response["reason"] == "client_cancel"
        time.sleep(0.1)  # any in-progress dial finishes...
        frozen = testbed.total_dials()
        time.sleep(0.1)
        assert testbed.total_dials() == frozen  # ...then the count freezes
        assert server.metrics.value("serving.cancelled") == 1.0
    finally:
        server.drain(timeout=10.0)


def test_server_cancel_unknown_or_done_id_is_harmless():
    testbed, server = _slow_server(wall_ms=0.0)
    try:
        host, port = server.address
        with ServingClient(host, port) as client:
            ack = client.cancel("never-existed")
            assert ack["status"] == "ok" and ack["cancelled"] is False
            done = client.query(testbed.chain_query(1, key="d1"))
            assert done["status"] == "ok"
            ack = client.cancel(done["id"])
            assert ack["cancelled"] is False
    finally:
        server.drain(timeout=10.0)


def test_server_cancel_queued_request_never_executes():
    testbed, server = _slow_server(workers=1)
    try:
        host, port = server.address
        with ServingClient(host, port) as client:
            running = client.send(
                {"op": "query", "query": testbed.chain_query(key="run")}
            )
            time.sleep(0.04)  # the single worker is now busy
            queued = client.send(
                {"op": "query", "query": testbed.chain_query(key="queued")}
            )
            ack = client.cancel(queued)
            assert ack["cancelled"] is True
            response = client.wait(queued, timeout_s=10.0)
            assert response["status"] == "cancelled"
            first = client.wait(running, timeout_s=30.0)
            assert first["status"] == "ok"
        # the queued chain's fresh key never dialed a source
        assert server.metrics.value("serving.cancel.queued") == 1.0
    finally:
        server.drain(timeout=10.0)


def test_server_deadline_exceeded_mid_flight():
    testbed, server = _slow_server()
    try:
        host, port = server.address
        with ServingClient(host, port) as client:
            response = client.query(
                testbed.chain_query(key="dl"),
                deadline_ms=40.0,
                timeout_s=30.0,
            )
        assert response["status"] == "deadline_exceeded"
        assert server.metrics.value("serving.deadline.exceeded") >= 1.0
    finally:
        server.drain(timeout=10.0)


def test_server_deadline_expires_in_queue_as_rejected():
    testbed, server = _slow_server(workers=1)
    try:
        host, port = server.address
        with ServingClient(host, port) as client:
            running = client.send(
                {"op": "query", "query": testbed.chain_query(key="busy")}
            )
            time.sleep(0.04)
            doomed = client.send(
                {
                    "op": "query",
                    "query": testbed.chain_query(key="doomed"),
                    "deadline_ms": 20.0,
                }
            )
            response = client.wait(doomed, timeout_s=10.0)
            assert response["status"] == "rejected"
            assert response["reason"] == "deadline_exceeded"
            assert client.wait(running, timeout_s=30.0)["status"] == "ok"
        assert server.metrics.value("serving.deadline.queue_expired") >= 1.0
    finally:
        server.drain(timeout=10.0)


def test_server_watchdog_enforces_max_runtime():
    testbed, server = _slow_server(max_runtime_ms=60.0)
    try:
        host, port = server.address
        with ServingClient(host, port) as client:
            response = client.query(
                testbed.chain_query(key="forever"), timeout_s=30.0
            )
        assert response["status"] == "cancelled"
        assert response["reason"] == "max_runtime"
        assert server.metrics.value("serving.cancel.watchdog") >= 1.0
    finally:
        server.drain(timeout=10.0)


def test_server_partial_results_respect_tenant_policy():
    testbed, server = _slow_server(
        wall_ms=0.0, partial_tenants={"strict": False}
    )
    testbed.set_down(frozenset({"w0"}))
    try:
        host, port = server.address
        with ServingClient(host, port, tenant="lenient") as client:
            response = client.query(testbed.chain_query(1, key="p1"))
            assert response["status"] == "partial"
            assert response["completeness"] == "partial"
            assert response["missing_sources"] == ["w0"]
        with ServingClient(host, port, tenant="strict") as client:
            response = client.query(testbed.chain_query(1, key="p2"))
            assert response["status"] == "error"
            assert response["kind"] == "PartialResult"
        assert server.metrics.value("serving.partial.returned") == 1.0
        assert server.metrics.value("serving.partial.denied") == 1.0
    finally:
        server.drain(timeout=10.0)


def test_server_duplicate_inflight_id_refused(m1_mediator):
    import socket as socket_mod

    server = MediatorServer(
        m1_mediator, config=ServingConfig(workers=1)
    ).start()
    try:
        host, port = server.address
        with socket_mod.create_connection((host, port), timeout=10.0) as sock:
            for _ in range(2):
                sock.sendall(
                    encode_message(
                        {"op": "query", "id": "dup", "query": "?- m(A, C)."}
                    )
                )
            sock.settimeout(10.0)
            data = b""
            while data.count(b"\n") < 2:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        responses = [
            decode_message(line)
            for line in data.split(b"\n")
            if line.strip()
        ]
        statuses = sorted(r["status"] for r in responses)
        assert statuses == ["error", "ok"]
        error = next(r for r in responses if r["status"] == "error")
        assert "already in flight" in error["error"]
    finally:
        server.drain(timeout=10.0)


def test_server_survives_oversized_and_invalid_frames(m1_mediator):
    import socket as socket_mod

    from repro.serving.protocol import MAX_LINE_BYTES

    server = MediatorServer(
        m1_mediator, config=ServingConfig(workers=1)
    ).start()
    host, port = server.address

    def one_frame(frame: bytes) -> str:
        try:
            with socket_mod.create_connection(
                (host, port), timeout=10.0
            ) as sock:
                sock.sendall(frame)
                sock.settimeout(10.0)
                data = b""
                while b"\n" not in data:
                    chunk = sock.recv(65536)
                    if not chunk:
                        return "closed"
                    data += chunk
            return str(decode_message(data.split(b"\n", 1)[0])["status"])
        except OSError:
            return "closed"

    try:
        assert one_frame(b"\xff\xfe not utf8 \xff\n") == "error"
        assert one_frame(b"{truncated\n") == "error"
        oversized = (
            b'{"op": "query", "query": "'
            + b"x" * (MAX_LINE_BYTES + 64)
            + b'"}\n'
        )
        assert one_frame(oversized) in ("error", "closed")
        # the server is still healthy afterwards
        with ServingClient(host, port) as client:
            assert client.ping()["pong"] is True
    finally:
        server.drain(timeout=10.0)


def test_client_fails_fast_after_connection_death():
    import socket as socket_mod

    listener = socket_mod.socket(socket_mod.AF_INET, socket_mod.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()
    client = ServingClient(host, port, timeout_s=30.0)
    try:
        conn, _ = listener.accept()
        started = time.perf_counter()
        # in-flight request: the reader fails it the moment the server dies
        target = client.send({"op": "ping"})
        conn.close()
        response = client.wait(target, timeout_s=30.0)
        assert response["kind"] == "Disconnected"
        # new requests after death fail fast, not after the 30s timeout
        with pytest.raises(ReproError, match="dead|closed|send failed"):
            client.request({"op": "ping"})
        assert time.perf_counter() - started < 5.0
        assert client.dead
    finally:
        client.close()
        listener.close()


def test_server_stats_expose_lifecycle_and_ewma(m1_mediator):
    server = MediatorServer(
        m1_mediator, config=ServingConfig(workers=1)
    ).start()
    try:
        host, port = server.address
        with ServingClient(host, port) as client:
            assert client.query("?- m(A, C).")["status"] == "ok"
            stats = client.stats()["stats"]
        assert stats["lifecycle"]["completed"] >= 1.0
        assert stats["ewma_service_ms"] is not None
        assert stats["retry_after_ms"] >= 0.0
        assert stats["shedding"] is False
    finally:
        server.drain(timeout=10.0)


# -- soak (outside the tier-1 budget) -----------------------------------------


@pytest.mark.serving
@pytest.mark.skipif(
    not os.environ.get("REPRO_SERVING_SOAK"),
    reason="serving soak test: set REPRO_SERVING_SOAK=1",
)
def test_soak_sustained_multi_tenant_load(m1_mediator):
    config = ServingConfig(
        workers=4,
        warm_threshold=3,
        admission=AdmissionPolicy(max_queue_depth=32, max_tenant_depth=16),
    )
    server = MediatorServer(m1_mediator, config=config).start()
    try:
        host, port = server.address
        tenants = ["t1", "t2", "t3", "t4"]
        plan = [
            (tenants[i % 4], "?- m(A, C).") for i in range(200)
        ]
        report = run_load(host, port, plan, rate_qps=100.0, connections=4)
        assert report.errors == 0
        assert report.ok + report.rejected == 200
        assert report.ok > 150  # under the admission limit almost all land
        summary = server.drain(timeout=30.0)
        assert summary["dropped_in_flight"] == 0.0
    finally:
        server.drain(timeout=10.0)

"""Failure-injection tests: outages mid-plan, flaky sources, bad data.

The paper motivates caching with "temporary unavailability" — these
tests pin down how failures surface and what state they leave behind."""

import pytest

from repro.cim.manager import CacheInvariantManager
from repro.core.mediator import Mediator
from repro.core.model import GroundCall
from repro.domains.base import Domain, simple_domain
from repro.domains.registry import DomainRegistry
from repro.errors import (
    BadCallError,
    NotGroundError,
    SourceUnavailableError,
    UnknownDomainError,
    UnknownFunctionError,
)
from repro.net.clock import SimClock
from repro.net.latency import Outage
from repro.net.sites import custom_site
from repro.net.remote import RemoteDomain


class TestOutagesMidPlan:
    def make(self, outage: Outage) -> Mediator:
        mediator = Mediator()
        clock = mediator.clock
        inner = simple_domain("remote", {"f": lambda x: ([x * 2], 100.0, 100.0)})
        site = custom_site("flaky", 10, 10, 1000)
        site = type(site)(site.name, site.region, site.latency.with_outages(outage))
        mediator.registry.add(RemoteDomain(inner, site, clock))
        mediator.register_domain(
            simple_domain("local", {"g": lambda: ([1, 2, 3], 5.0, 15.0)})
        )
        mediator.load_program(
            "p(X, Y) :- in(X, local:g()) & in(Y, remote:f(X))."
        )
        return mediator

    def test_outage_mid_plan_propagates(self):
        # outage begins after the first remote call completes
        mediator = self.make(Outage(150.0, 1e9))
        with pytest.raises(SourceUnavailableError) as excinfo:
            mediator.query("?- p(X, Y).")
        assert excinfo.value.domain == "remote"
        assert excinfo.value.site == "flaky"

    def test_clock_reflects_work_done_before_failure(self):
        mediator = self.make(Outage(150.0, 1e9))
        with pytest.raises(SourceUnavailableError):
            mediator.query("?- p(X, Y).")
        # the local call and the first remote call were charged
        assert mediator.clock.now_ms > 100.0

    def test_statistics_from_successful_prefix_kept(self):
        mediator = self.make(Outage(150.0, 1e9))
        with pytest.raises(SourceUnavailableError):
            mediator.query("?- p(X, Y).")
        assert mediator.dcsm.observation_count() >= 1

    def test_recovery_after_outage(self):
        mediator = self.make(Outage(150.0, 300.0))
        with pytest.raises(SourceUnavailableError):
            mediator.query("?- p(X, Y).")
        mediator.clock.advance_to(400.0)
        result = mediator.query("?- p(X, Y).")
        assert result.cardinality == 3

    def test_cached_prefix_survives_for_cim_queries(self):
        mediator = self.make(Outage(1e8, 2e8))  # far future: warm first
        mediator.query("?- p(X, Y).", use_cim=True)
        mediator.clock.advance_to(1.5e8)  # inside the outage
        result = mediator.query("?- p(X, Y).", use_cim=True)
        assert result.cardinality == 3  # fully served from cache
        assert result.execution.provenance["cache"] >= 3


class TestBadSources:
    def test_unknown_domain_at_execution(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: [1]}))
        mediator.load_program("p(X) :- in(X, ghost:f()).")
        with pytest.raises(UnknownDomainError):
            mediator.query("?- p(X).")

    def test_unknown_function(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: [1]}))
        mediator.load_program("p(X) :- in(X, d:zap()).")
        with pytest.raises(UnknownFunctionError):
            mediator.query("?- p(X).")

    def test_wrong_arity_raises_bad_call(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda x: [x]}))
        mediator.load_program("p(X) :- in(X, d:f(1, 2)).")
        with pytest.raises(BadCallError):
            mediator.query("?- p(X).")

    def test_implementation_returning_garbage(self):
        domain = Domain("d")
        domain.register("bad", lambda: 42, arity=0)
        with pytest.raises(BadCallError):
            domain.execute(GroundCall("d", "bad", ()))

    def test_source_exception_propagates_with_context(self):
        def broken():
            raise ValueError("disk on fire")

        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": broken}))
        mediator.load_program("p(X) :- in(X, d:f()).")
        with pytest.raises(ValueError, match="disk on fire"):
            mediator.query("?- p(X).")

    def test_inverted_timings_rejected(self):
        domain = simple_domain("d", {"f": lambda: ([1], 10.0, 5.0)})
        result = domain.execute(GroundCall("d", "f", ()))
        # normalised rather than rejected: t_all floored to t_first
        assert result.t_all_ms >= result.t_first_ms


class TestCimUnderFailure:
    def test_observer_exception_does_not_corrupt_cache(self):
        calls = {"n": 0}

        def observer(result):
            calls["n"] += 1
            raise RuntimeError("telemetry down")

        domain = simple_domain("d", {"f": lambda: [1]})
        cim = CacheInvariantManager(
            DomainRegistry([domain]), SimClock(), observer=observer
        )
        with pytest.raises(RuntimeError):
            cim.lookup(GroundCall("d", "f", ()))
        # the result WAS cached before the observer blew up
        hit = cim.lookup(GroundCall("d", "f", ()))
        assert hit.provenance == "cache"

    def test_nonground_call_rejected_before_dispatch(self):
        from repro.core.model import DomainCall
        from repro.core.terms import Variable

        call = DomainCall("d", "f", (Variable("X"),))
        with pytest.raises(NotGroundError):
            call.ground({})

"""Unit tests for terms: Row records, attribute paths, value sizing."""

import pytest

from repro.core.terms import (
    AttrPath,
    Constant,
    Row,
    Variable,
    format_value,
    select_path,
    term_from,
    value_bytes,
)
from repro.errors import NotGroundError


class TestRow:
    def test_named_access(self):
        row = Row([("name", "stewart"), ("role", "rupert")])
        assert row.name == "stewart"
        assert row.role == "rupert"

    def test_positional_access_is_one_based(self):
        row = Row([("a", 10), ("b", 20)])
        assert row[1] == 10
        assert row[2] == 20

    def test_project_by_name_and_position(self):
        row = Row([("x", 1.5), ("y", 2.5)])
        assert row.project("y") == 2.5
        assert row.project(1) == 1.5

    def test_out_of_range_position(self):
        row = Row([("a", 1)])
        with pytest.raises(KeyError):
            row.project(2)
        with pytest.raises(KeyError):
            row.project(0)

    def test_unknown_field(self):
        row = Row([("a", 1)])
        with pytest.raises(KeyError):
            row.project("b")
        with pytest.raises(AttributeError):
            _ = row.missing

    def test_equality_and_hash(self):
        r1 = Row([("a", 1), ("b", 2)])
        r2 = Row([("a", 1), ("b", 2)])
        r3 = Row([("a", 1), ("b", 3)])
        assert r1 == r2
        assert hash(r1) == hash(r2)
        assert r1 != r3
        assert len({r1, r2, r3}) == 2

    def test_field_names_matter_for_equality(self):
        assert Row([("a", 1)]) != Row([("b", 1)])

    def test_from_dict(self):
        row = Row({"k": "v"})
        assert row.k == "v"

    def test_iteration_and_len(self):
        row = Row([("a", 1), ("b", 2)])
        assert list(row) == [1, 2]
        assert len(row) == 2

    def test_as_dict_preserves_order(self):
        row = Row([("z", 1), ("a", 2)])
        assert list(row.as_dict()) == ["z", "a"]


class TestTerms:
    def test_constant_is_ground(self):
        assert Constant(5).is_ground()
        assert Constant(5).variables() == frozenset()

    def test_variable_not_ground(self):
        v = Variable("X")
        assert not v.is_ground()
        assert v.variables() == frozenset({v})

    def test_attrpath_variables(self):
        path = AttrPath(Variable("T"), ("name",))
        assert path.variables() == frozenset({Variable("T")})
        assert not path.is_ground()

    def test_term_from_coerces_values(self):
        assert term_from(3) == Constant(3)
        assert term_from(Variable("X")) == Variable("X")

    def test_str_rendering(self):
        assert str(Constant("a")) == "'a'"
        assert str(Constant(5)) == "5"
        assert str(Variable("X")) == "X"
        assert str(AttrPath(Variable("T"), ("loc",))) == "T.loc"


class TestSelectPath:
    def test_row_by_name(self):
        row = Row([("loc", "depot")])
        assert select_path(row, ("loc",)) == "depot"

    def test_row_by_position(self):
        row = Row([("a", 1), ("b", 2)])
        assert select_path(row, (2,)) == 2

    def test_tuple_by_position(self):
        assert select_path(("x", "y"), (1,)) == "x"
        assert select_path(("x", "y"), (2,)) == "y"

    def test_nested_path(self):
        inner = Row([("city", "rome")])
        outer = Row([("address", inner)])
        assert select_path(outer, ("address", "city")) == "rome"

    def test_tuple_out_of_range(self):
        with pytest.raises(KeyError):
            select_path((1,), (2,))

    def test_scalar_base_fails(self):
        with pytest.raises(NotGroundError):
            select_path(42, ("field",))


class TestValueBytes:
    def test_scalars(self):
        assert value_bytes(True) == 1
        assert value_bytes(7) == 8
        assert value_bytes(1.5) == 8
        assert value_bytes(None) == 1

    def test_string_is_utf8_length(self):
        assert value_bytes("abc") == 3

    def test_row_sums_fields(self):
        row = Row([("a", "xy"), ("b", 3)])
        assert value_bytes(row) == 2 + 8 + 4  # fields + 2 per field overhead

    def test_tuple_sums(self):
        assert value_bytes(("ab", "c")) == 2 + 1 + 4


def test_format_value():
    assert format_value("s") == "'s'"
    assert format_value(3) == "3"

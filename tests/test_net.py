"""Simulated network tests: clock, latency models, sites, remote wrapper."""

import pytest

from repro.core.model import GroundCall
from repro.domains.base import simple_domain
from repro.errors import ReproError, SourceUnavailableError
from repro.net.clock import SimClock, Stopwatch
from repro.net.latency import LatencyModel, Outage
from repro.net.remote import RemoteDomain
from repro.net.sites import SITE_PROFILES, custom_site, make_site


class TestClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(10)
        clock.advance(2.5)
        assert clock.now_ms == pytest.approx(12.5)

    def test_negative_advance_rejected(self):
        with pytest.raises(ReproError):
            SimClock().advance(-1)

    def test_advance_to(self):
        clock = SimClock(100)
        clock.advance_to(50)  # no going back
        assert clock.now_ms == 100
        clock.advance_to(200)
        assert clock.now_ms == 200

    def test_stopwatch(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(30)
        assert watch.elapsed_ms == 30
        watch.restart()
        assert watch.elapsed_ms == 0


class TestLatencyModel:
    def test_setup_and_transfer_deterministic_without_jitter(self):
        model = LatencyModel(connect_ms=10, rtt_ms=5, bandwidth_bytes_per_ms=100)
        assert model.setup_ms() == 15
        assert model.transfer_ms(1000) == 10

    def test_jitter_bounded_and_reproducible(self):
        m1 = LatencyModel(connect_ms=100, rtt_ms=0, jitter=0.2, seed=42)
        m2 = LatencyModel(connect_ms=100, rtt_ms=0, jitter=0.2, seed=42)
        values1 = [m1.setup_ms() for _ in range(20)]
        values2 = [m2.setup_ms() for _ in range(20)]
        assert values1 == values2
        assert all(80 <= v <= 120 for v in values1)
        assert len(set(values1)) > 1

    def test_zero_transfer(self):
        model = LatencyModel()
        assert model.transfer_ms(0) == 0.0

    def test_validation(self):
        with pytest.raises(ReproError):
            LatencyModel(bandwidth_bytes_per_ms=0)
        with pytest.raises(ReproError):
            LatencyModel(jitter=1.5)

    def test_outage_windows(self):
        model = LatencyModel(outages=(Outage(100, 200),))
        assert model.outage_at(150) is not None
        assert model.outage_at(99) is None
        assert model.outage_at(200) is None  # half-open

    def test_with_outages_copies(self):
        base = LatencyModel()
        extended = base.with_outages(Outage(0, 10))
        assert base.outage_at(5) is None
        assert extended.outage_at(5) is not None

    def test_bad_outage(self):
        with pytest.raises(ReproError):
            Outage(10, 10)


class TestSites:
    def test_catalog_complete(self):
        for name in SITE_PROFILES:
            site = make_site(name)
            assert site.name == name

    def test_unknown_site(self):
        with pytest.raises(KeyError):
            make_site("atlantis")

    def test_italy_slower_than_cornell(self):
        italy = make_site("italy")
        cornell = make_site("cornell")
        assert italy.latency.connect_ms > cornell.latency.connect_ms
        assert italy.latency.bandwidth_bytes_per_ms < cornell.latency.bandwidth_bytes_per_ms

    def test_local_site(self):
        assert make_site("maryland").is_local
        assert not make_site("italy").is_local

    def test_custom_site(self):
        site = custom_site("lab", connect_ms=1, rtt_ms=1, bandwidth_bytes_per_ms=1000)
        assert site.name == "lab"


class TestRemoteDomain:
    def make(self, site_name="cornell", payload=None, clock=None):
        payload = payload if payload is not None else [f"item{i:03d}" * 10 for i in range(10)]
        domain = simple_domain("d", {"f": lambda: list(payload)}, base_cost_ms=5.0)
        remote = RemoteDomain(domain, make_site(site_name), clock)
        return remote

    def test_adds_network_cost(self):
        remote = self.make()
        local_result = remote.domain.execute(GroundCall("d", "f", ()))
        remote_result = remote.execute(GroundCall("d", "f", ()))
        assert remote_result.t_all_ms > local_result.t_all_ms
        assert remote_result.answers == local_result.answers

    def test_first_answer_cheaper_than_all(self):
        remote = self.make()
        result = remote.execute(GroundCall("d", "f", ()))
        assert result.t_first_ms < result.t_all_ms

    def test_italy_slower_than_usa(self):
        usa = self.make("cornell").execute(GroundCall("d", "f", ()))
        italy = self.make("italy").execute(GroundCall("d", "f", ()))
        assert italy.t_all_ms > 3 * usa.t_all_ms

    def test_outage_raises(self):
        clock = SimClock()
        domain = simple_domain("d", {"f": lambda: [1]})
        site = make_site("cornell")
        site = type(site)(site.name, site.region, site.latency.with_outages(Outage(0, 1000)))
        remote = RemoteDomain(domain, site, clock)
        with pytest.raises(SourceUnavailableError) as excinfo:
            remote.execute(GroundCall("d", "f", ()))
        assert excinfo.value.until_ms == 1000
        clock.advance(1500)  # outage over
        assert remote.execute(GroundCall("d", "f", ())).answers == (1,)

    def test_fee_accounting(self):
        domain = simple_domain("d", {"f": lambda: [1]})
        site = custom_site("tollbooth", 1, 1, 100)
        site.latency.fee_per_call = 0.25
        remote = RemoteDomain(domain, site)
        remote.execute(GroundCall("d", "f", ()))
        remote.execute(GroundCall("d", "f", ()))
        assert remote.fees_charged == pytest.approx(0.5)

    def test_empty_answers_no_transfer(self):
        domain = simple_domain("d", {"f": lambda: []})
        remote = RemoteDomain(domain, make_site("cornell"))
        result = remote.execute(GroundCall("d", "f", ()))
        assert result.answers == ()
        assert result.t_all_ms > 0  # still paid setup


class TestPerBatchTransfer:
    """Transfer time is charged once per answer batch, not once per call."""

    def make(self, payload):
        domain = simple_domain("d", {"f": lambda: list(payload)}, base_cost_ms=5.0)
        site = custom_site("lab", connect_ms=10, rtt_ms=5, bandwidth_bytes_per_ms=10)
        remote = RemoteDomain(domain, site)
        return remote, domain, site

    def test_one_transfer_per_answer(self):
        remote, _, site = self.make(["aa", "bbbb", "cccccc"])
        calls = []
        original = site.latency.transfer_ms
        site.latency.transfer_ms = lambda nbytes: calls.append(nbytes) or original(nbytes)
        remote.execute(GroundCall("d", "f", ()))
        assert calls == [2, 4, 6]  # each answer ships its own bytes

    def test_timing_decomposition_without_jitter(self):
        remote, domain, site = self.make(["aa", "bbbb", "cccccc"])
        local = domain.execute(GroundCall("d", "f", ()))
        result = remote.execute(GroundCall("d", "f", ()))
        setup = 15.0  # connect + rtt, no jitter
        per_batch = [2 / 10, 4 / 10, 6 / 10]  # bytes / bandwidth
        assert result.t_first_ms == pytest.approx(
            setup + local.t_first_ms + per_batch[0]
        )
        assert result.t_all_ms == pytest.approx(
            setup + local.t_all_ms + sum(per_batch)
        )

    def test_first_answer_pays_only_its_own_bytes(self):
        # a tiny first answer followed by a huge one: T_first must not be
        # charged for the big batch
        remote, domain, _ = self.make(["x", "y" * 10_000])
        local = domain.execute(GroundCall("d", "f", ()))
        result = remote.execute(GroundCall("d", "f", ()))
        first_transfer = result.t_first_ms - 15.0 - local.t_first_ms
        assert first_transfer == pytest.approx(1 / 10)

"""Result cache tests: lookup, eviction policies, TTL, byte accounting."""

import pytest

from repro.cim.cache import POLICY_LFU, ResultCache
from repro.core.model import GroundCall
from repro.errors import CacheError


def call(i: int, fn: str = "f") -> GroundCall:
    return GroundCall("d", fn, (i,))


class TestBasics:
    def test_put_get(self):
        cache = ResultCache()
        cache.put(call(1), (10, 20))
        entry = cache.get(call(1))
        assert entry is not None
        assert entry.answers == (10, 20)
        assert entry.complete

    def test_miss(self):
        cache = ResultCache()
        assert cache.get(call(1)) is None
        assert cache.stats.misses == 1

    def test_replace(self):
        cache = ResultCache()
        cache.put(call(1), (1,))
        cache.put(call(1), (1, 2))
        assert cache.get(call(1)).answers == (1, 2)
        assert len(cache) == 1

    def test_complete_not_downgraded_by_incomplete(self):
        cache = ResultCache()
        cache.put(call(1), (1, 2, 3), complete=True)
        cache.put(call(1), (1,), complete=False)
        assert cache.get(call(1)).answers == (1, 2, 3)

    def test_incomplete_upgraded_by_complete(self):
        cache = ResultCache()
        cache.put(call(1), (1,), complete=False)
        cache.put(call(1), (1, 2, 3), complete=True)
        entry = cache.get(call(1))
        assert entry.complete and len(entry.answers) == 3

    def test_invalidate(self):
        cache = ResultCache()
        cache.put(call(1), (1,))
        assert cache.invalidate(call(1))
        assert not cache.invalidate(call(1))
        assert cache.get(call(1)) is None

    def test_invalidate_function(self):
        cache = ResultCache()
        cache.put(call(1, "f"), (1,))
        cache.put(call(2, "f"), (2,))
        cache.put(call(1, "g"), (3,))
        assert cache.invalidate_function("d", "f") == 2
        assert cache.get(call(1, "g")) is not None

    def test_clear_resets_stats(self):
        cache = ResultCache()
        cache.put(call(1), (1,))
        cache.get(call(1))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_hit_rate(self):
        cache = ResultCache()
        cache.put(call(1), (1,))
        cache.get(call(1))
        cache.get(call(2))
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestEviction:
    def test_lru_evicts_oldest(self):
        cache = ResultCache(max_entries=2)
        cache.put(call(1), (1,))
        cache.put(call(2), (2,))
        cache.get(call(1))  # touch 1 → 2 is now LRU
        cache.put(call(3), (3,))
        assert cache.get(call(2)) is None
        assert cache.get(call(1)) is not None
        assert cache.stats.evictions == 1

    def test_lfu_evicts_least_hit(self):
        cache = ResultCache(max_entries=2, policy=POLICY_LFU)
        cache.put(call(1), (1,))
        cache.put(call(2), (2,))
        cache.get(call(1))
        cache.get(call(1))
        cache.put(call(3), (3,))
        assert cache.get(call(2)) is None
        assert cache.get(call(1)) is not None

    def test_byte_bound(self):
        cache = ResultCache(max_bytes=100)
        cache.put(call(1), ("x" * 60,))
        cache.put(call(2), ("y" * 60,))
        assert len(cache) == 1  # first evicted to fit

    def test_new_entry_protected_from_own_eviction(self):
        cache = ResultCache(max_bytes=10)
        cache.put(call(1), ("z" * 100,))  # oversized but kept (only entry)
        assert len(cache) == 1

    def test_entries_scanning_by_function(self):
        cache = ResultCache()
        cache.put(call(1, "f"), (1,))
        cache.put(call(2, "f"), (2,))
        cache.put(call(1, "g"), (3,))
        entries = list(cache.entries_for("d", "f"))
        assert len(entries) == 2

    def test_config_validation(self):
        with pytest.raises(CacheError):
            ResultCache(policy="random")
        with pytest.raises(CacheError):
            ResultCache(max_entries=0)


class TestTtl:
    def test_expiry(self):
        cache = ResultCache(ttl_ms=100)
        cache.put(call(1), (1,), now_ms=0)
        assert cache.get(call(1), now_ms=50) is not None
        assert cache.get(call(1), now_ms=150) is None
        assert cache.stats.expirations == 1

    def test_peek_honours_ttl_without_stats(self):
        cache = ResultCache(ttl_ms=100)
        cache.put(call(1), (1,), now_ms=0)
        lookups_before = cache.stats.lookups
        assert cache.peek(call(1), now_ms=50) is not None
        assert cache.peek(call(1), now_ms=150) is None
        assert cache.stats.lookups == lookups_before

    def test_entries_for_skips_expired(self):
        cache = ResultCache(ttl_ms=100)
        cache.put(call(1), (1,), now_ms=0)
        cache.put(call(2), (2,), now_ms=90)
        live = list(cache.entries_for("d", "f", now_ms=120))
        assert len(live) == 1

    def test_peek_stale_survives_expiry(self):
        cache = ResultCache(ttl_ms=100)
        cache.put(call(1), (1,), now_ms=0)
        assert cache.get(call(1), now_ms=150) is None  # expired and parked
        stale = cache.peek_stale(call(1))
        assert stale is not None and stale.answers == (1,)

    def test_peek_stale_prefers_live_entry(self):
        cache = ResultCache(ttl_ms=100)
        cache.put(call(1), (1,), now_ms=0)
        cache.get(call(1), now_ms=150)  # park the old copy
        cache.put(call(1), (2,), now_ms=160)  # fresh data supersedes it
        assert cache.peek_stale(call(1)).answers == (2,)

    def test_invalidation_purges_parked_stale(self):
        cache = ResultCache(ttl_ms=100)
        cache.put(call(1), (1,), now_ms=0)
        cache.get(call(1), now_ms=150)
        cache.invalidate(call(1))
        assert cache.peek_stale(call(1)) is None
        cache.put(call(2), (2,), now_ms=0)
        cache.get(call(2), now_ms=150)
        cache.invalidate_domain("d")
        assert cache.peek_stale(call(2)) is None


class TestByteAccounting:
    def test_total_bytes_tracks(self):
        cache = ResultCache()
        cache.put(call(1), ("abcd",))
        assert cache.total_bytes == 4
        cache.put(call(2), ("xy",))
        assert cache.total_bytes == 6
        cache.invalidate(call(1))
        assert cache.total_bytes == 2

"""Every shipped example must run clean — they are the quickstart
deliverable and double as end-to-end smoke tests."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(path: Path):
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print something"
    assert "Traceback" not in completed.stderr


def test_quickstart_shows_cache_win():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    out = completed.stdout
    assert "cold" in out and "warm" in out

"""Fast unit tests for the experiment harness itself (the heavyweight
shape-asserting runs live in benchmarks/)."""

import pytest

from repro.experiments import figure5, figure6, observations, summarization
from repro.experiments.harness import (
    fresh_rope_testbed,
    plan_starting_with,
    train_rope_dcsm,
)
from repro.experiments.reporting import fmt_ms, fmt_ratio, format_table


class TestReporting:
    def test_fmt_ms(self):
        assert fmt_ms(None) == "-"
        assert fmt_ms(1234.4) == "1234"
        assert fmt_ms(3.14159) == "3.14"
        assert fmt_ms(50, width=8) == "      50"

    def test_fmt_ratio(self):
        assert fmt_ratio(None) == "-"
        assert fmt_ratio(2.0) == "2.00x"

    def test_format_table_alignment(self):
        text = format_table(
            ["col", "x"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows same width

    def test_format_table_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestHarness:
    def test_fresh_testbed_is_cold(self):
        mediator = fresh_rope_testbed()
        assert mediator.dcsm.observation_count() == 0
        assert len(mediator.cim.cache) == 0
        assert mediator.clock.now_ms == 0.0

    def test_training_populates_statistics_not_cache(self):
        mediator = fresh_rope_testbed()
        recorded = train_rope_dcsm(mediator, instantiations=5)
        assert recorded > 10
        assert mediator.dcsm.observation_count() == recorded
        assert len(mediator.cim.cache) == 0

    def test_training_via_cim_warms_cache(self):
        mediator = fresh_rope_testbed()
        train_rope_dcsm(mediator, instantiations=5, record_via_cim=True)
        assert len(mediator.cim.cache) > 0

    def test_plan_starting_with(self):
        mediator = fresh_rope_testbed()
        plans = mediator.plans("?- query1(4, 47, Object, Size).")
        plan = plan_starting_with(plans, "video_size")
        assert plan.call_steps()[0].atom.call.function == "video_size"
        with pytest.raises(LookupError):
            plan_starting_with(plans, "no_such_function")


class TestFigure5Config:
    def test_query_specs_cover_paper_groups(self):
        labels = [spec.label for spec in figure5.QUERY_SPECS]
        assert any("actors" in label for label in labels)
        assert any("4 and 47" in label for label in labels)
        assert any("4 and 127" in label for label in labels)

    def test_warm_calls_reference_real_video(self):
        for spec in figure5.QUERY_SPECS:
            for warm in (spec.eq_warm, spec.partial_warm):
                if warm is not None:
                    assert warm.domain == "video"
                    assert warm.args[0] == "rope"

    def test_single_cell_measurement(self):
        spec = figure5.QUERY_SPECS[2]  # objects 4..47
        row = figure5._measure(
            spec, "no cache, no invar.", "cornell", None, False, seed=0
        )
        assert row.tuples == spec.expected_tuples
        assert row.t_all_ms > row.t_first_ms > 0


class TestFigure6Config:
    def test_variant_labels(self):
        labels = [variant.label for variant in figure6.VARIANTS]
        assert labels == ["query1", "query1'", "query2", "query2'", "query3", "query4"]

    def test_plan_selection_distinguishes_primes(self):
        mediator = fresh_rope_testbed()
        plan_unprimed = figure6._select_plan(mediator, figure6.VARIANTS[0])
        plan_primed = figure6._select_plan(mediator, figure6.VARIANTS[1])
        assert plan_unprimed.signature() != plan_primed.signature()

    def test_query2_orders(self):
        mediator = fresh_rope_testbed()
        q2 = figure6._select_plan(mediator, figure6.VARIANTS[2])
        q2p = figure6._select_plan(mediator, figure6.VARIANTS[3])
        order = tuple(s.atom.call.function for s in q2.call_steps())
        order_p = tuple(s.atom.call.function for s in q2p.call_steps())
        assert order == ("frames_to_objects", "object_to_frames", "equal")
        assert order_p == ("frames_to_objects", "equal", "object_to_frames")

    def test_prediction_errors_math(self):
        rows = [
            figure6.Fig6Row("q", 1.0, 1.0, 1.0, 100.0, 110.0, 200.0),
            figure6.Fig6Row("r", 1.0, 1.0, 1.0, 100.0, 90.0, 50.0),
        ]
        errors = figure6.prediction_errors(rows)
        assert errors["lossless"] == pytest.approx(0.1)
        assert errors["lossy"] == pytest.approx(0.75)


class TestObservationsHelpers:
    def test_margin(self):
        assert observations._margin(1.0, 2.0) == pytest.approx(0.5)
        assert observations._margin(0.0, 0.0) == 0.0

    def test_summarize_buckets(self):
        outcomes = [
            observations.PairOutcome("p", (1, 2), 0.8, True, 0.6, True),
            observations.PairOutcome("p", (1, 2), 0.8, True, 0.1, False),
            observations.PairOutcome("p", (1, 2), 0.8, False, 0.1, None),
        ]
        summary = observations.summarize(outcomes)
        assert summary.accuracy_all == pytest.approx(2 / 3)
        assert summary.accuracy_first_large_margin == 1.0
        assert summary.accuracy_first_small_margin == 0.0
        assert summary.pairs_measured == 3

    def test_plan_pair_unknown(self):
        mediator = fresh_rope_testbed()
        with pytest.raises(LookupError):
            observations._plan_pair(mediator, "nope", 1, 2)


class TestSummarizationHelpers:
    def test_training_calls_deterministic_and_valid(self):
        calls_a = summarization._training_calls(30, seed=1)
        calls_b = summarization._training_calls(30, seed=1)
        assert calls_a == calls_b
        assert len(calls_a) == 30
        for call in calls_a:
            if call.function == "frames_to_objects":
                __, first, last = call.args
                assert first <= last

    def test_configure_rejects_unknown_mode(self):
        from repro.dcsm.module import DCSM

        with pytest.raises(ValueError):
            summarization._configure(DCSM(), "quantum")

    def test_hidden_program_analysis_drops_object_dim(self):
        from repro.core.parser import parse_program
        from repro.dcsm.summary import lossy_dims_from_program

        program = parse_program(summarization.HIDDEN_PROGRAM)
        dims = lossy_dims_from_program(program, "video", "object_to_frames", 2)
        assert dims == (0,)  # the object argument is dropped
        dims = lossy_dims_from_program(program, "video", "frames_to_objects", 3)
        assert dims == (0, 1, 2)  # interval bounds stay

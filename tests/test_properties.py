"""Cross-cutting property-based tests (hypothesis) on the system's core
soundness invariants:

1. CIM soundness — answers served via cache/invariants equal (equality
   paths) or are a subset of (partial paths) the real call's answers.
2. Lossless summarization — any pattern estimate from the lossless
   summary equals the raw-database aggregate.
3. Plan equivalence — every plan the rewriter emits computes the same
   answer multiset.
4. Cost-estimator monotonicity — more expensive sources never make a plan
   look cheaper.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cim.manager import CacheInvariantManager, CimPolicy
from repro.core.mediator import Mediator
from repro.core.model import GroundCall
from repro.core.parser import parse_invariant
from repro.dcsm.database import CostVectorDatabase
from repro.dcsm.patterns import BOUND, CallPattern
from repro.dcsm.summary import SummaryTable
from repro.dcsm.vectors import CostVector, Observation
from repro.domains.base import simple_domain
from repro.domains.registry import DomainRegistry
from repro.net.clock import SimClock

# ---------------------------------------------------------------------------
# 1. CIM soundness
# ---------------------------------------------------------------------------

intervals = st.tuples(st.integers(0, 60), st.integers(0, 60)).map(
    lambda pair: (min(pair), max(pair))
)


@settings(max_examples=60, deadline=None)
@given(warm=st.lists(intervals, min_size=1, max_size=5), request=intervals)
def test_cim_answers_always_sound(warm, request):
    """Whatever mix of cached intervals exists, a SERIAL lookup returns
    exactly the real answer set, and a PARTIAL_ONLY lookup returns a
    subset of it."""

    def span_impl(a, b):
        return list(range(a, b + 1))

    domain = simple_domain("d", {"span": span_impl})
    registry = DomainRegistry([domain])
    invariant = parse_invariant(
        "A1 <= A2 & B2 <= B1 => d:span(A1, B1) >= d:span(A2, B2)."
    )
    cim = CacheInvariantManager(registry, SimClock(), invariants=[invariant])
    for a, b in warm:
        cim.lookup(GroundCall("d", "span", (a, b)))

    truth = set(span_impl(*request))
    call = GroundCall("d", "span", request)

    serial = cim.lookup(call)
    assert set(serial.answers) == truth
    assert serial.complete

    cim.policy = CimPolicy.PARTIAL_ONLY
    partial = cim.lookup(call)
    assert set(partial.answers) <= truth


# ---------------------------------------------------------------------------
# 2. Lossless summarization
# ---------------------------------------------------------------------------

observation_strategy = st.tuples(
    st.sampled_from(["a", "b", "c", "d"]),
    st.integers(1, 3),
    st.floats(0.5, 100.0),
    st.integers(0, 20),
)


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(observation_strategy, min_size=1, max_size=30),
    probe=st.sampled_from(["a", "b", "c", "d", BOUND]),
)
def test_lossless_summary_equals_raw_aggregate(rows, probe):
    db = CostVectorDatabase()
    observations = []
    for arg1, arg2, t_all, card in rows:
        obs = Observation(
            call=GroundCall("d", "f", (arg1, arg2)),
            vector=CostVector(t_all / 2, t_all, float(card)),
        )
        db.record(obs)
        observations.append(obs)
    table = SummaryTable.summarize(observations, "d", "f", 2)

    pattern = CallPattern("d", "f", (probe, BOUND))
    raw_vector, __ = db.estimate(pattern)
    summary_vector, __ = table.aggregate(pattern)
    if raw_vector.is_empty():
        assert summary_vector is None or summary_vector.is_empty()
    else:
        assert summary_vector is not None
        assert summary_vector.t_all_ms == pytest.approx(raw_vector.t_all_ms)
        assert summary_vector.cardinality == pytest.approx(raw_vector.cardinality)
        assert summary_vector.t_first_ms == pytest.approx(raw_vector.t_first_ms)


@settings(max_examples=40, deadline=None)
@given(rows=st.lists(observation_strategy, min_size=1, max_size=30))
def test_coarsening_preserves_global_average(rows):
    """Dropping dimensions via count-weighted merge keeps the grand
    average exact (lossy in resolution, not in totals)."""
    observations = [
        Observation(
            call=GroundCall("d", "f", (arg1, arg2)),
            vector=CostVector(t_all / 2, t_all, float(card)),
        )
        for arg1, arg2, t_all, card in rows
    ]
    lossless = SummaryTable.summarize(observations, "d", "f", 2)
    for dims in ((0,), (1,), ()):
        coarse = lossless.coarsen(dims)
        pattern = CallPattern("d", "f", (BOUND, BOUND))
        full, __ = lossless.aggregate(pattern)
        reduced, __ = coarse.aggregate(pattern)
        assert reduced.t_all_ms == pytest.approx(full.t_all_ms)
        assert reduced.cardinality == pytest.approx(full.cardinality)


# ---------------------------------------------------------------------------
# 3. Plan equivalence
# ---------------------------------------------------------------------------

pair_lists = st.lists(
    st.tuples(st.sampled_from("ab"), st.integers(1, 3)),
    min_size=0,
    max_size=6,
)


@settings(max_examples=30, deadline=None)
@given(p_pairs=pair_lists, q_pairs=st.lists(
    st.tuples(st.integers(1, 3), st.sampled_from("xyz")), max_size=6
))
def test_all_plans_compute_same_answers(p_pairs, q_pairs):
    mediator = Mediator()
    mediator.register_domain(
        simple_domain(
            "d1",
            {
                "p_ff": lambda: [tuple(pair) for pair in p_pairs],
                "p_bb": lambda a, b: [True] if (a, b) in p_pairs else [],
            },
        )
    )
    mediator.register_domain(
        simple_domain(
            "d2",
            {
                "q_ff": lambda: [tuple(pair) for pair in q_pairs],
                "q_bf": lambda b: [c for bb, c in q_pairs if bb == b],
            },
        )
    )
    mediator.load_program(
        """
        m(A, C) :- p(A, B) & q(B, C).
        p(A, B) :- in(Ans, d1:p_ff()), =($Ans.1, A), =($Ans.2, B).
        p(A, B) :- in(X, d1:p_bb(A, B)).
        q(B, C) :- in(Ans, d2:q_ff()), =($Ans.1, B), =($Ans.2, C).
        q(B, C) :- in(C, d2:q_bf(B)).
        """
    )
    answer_sets = []
    for plan in mediator.plans("?- m(a, C)."):
        result = mediator.query("?- m(a, C).", plan=plan)
        answer_sets.append(sorted(set(result.answers)))
    assert len(answer_sets) >= 2
    for answers in answer_sets[1:]:
        assert answers == answer_sets[0]


# ---------------------------------------------------------------------------
# 4. Estimator monotonicity
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    base_cost=st.floats(1.0, 50.0),
    extra=st.floats(0.1, 200.0),
    card=st.integers(1, 10),
)
def test_estimator_monotone_in_source_cost(base_cost, extra, card):
    from repro.core.estimator import RuleCostEstimator
    from repro.core.model import make_in
    from repro.core.plans import CallStep, Plan
    from repro.core.terms import Variable
    from repro.dcsm.module import DCSM
    from repro.domains.base import CallResult

    def trained(cost: float) -> DCSM:
        dcsm = DCSM()
        dcsm.record(
            CallResult(
                call=GroundCall("d", "f", ()),
                answers=tuple(range(card)),
                t_first_ms=cost / 2,
                t_all_ms=cost,
            )
        )
        return dcsm

    X = Variable("X")
    plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
    cheap = RuleCostEstimator(trained(base_cost)).estimate(plan)
    pricey = RuleCostEstimator(trained(base_cost + extra)).estimate(plan)
    assert pricey.t_all_ms > cheap.t_all_ms
    assert pricey.t_first_ms >= cheap.t_first_ms


# ---------------------------------------------------------------------------
# 5. Parser round trips on generated programs
# ---------------------------------------------------------------------------

from repro.core.parser import parse_program, parse_invariant


_idents = st.sampled_from(["p", "q", "video", "fetch", "route_to"])
_functions = st.sampled_from(["f", "select_eq", "frames_to_objects"])
_variables = st.sampled_from(["X", "Y", "First", "Last", "Ans"])
_constants = st.one_of(
    st.integers(-99, 99),
    st.sampled_from(["'quoted val'", "atom", "true", "4.5"]),
)


def _term_text(draw_variable: bool, value) -> str:
    return value if isinstance(value, str) else str(value)


_term_texts = st.one_of(_variables, _constants.map(_term_text.__get__(True)))


@st.composite
def rule_texts(draw):
    head = draw(_idents)
    head_vars = draw(st.lists(_variables, min_size=1, max_size=3, unique=True))
    literals = []
    for __ in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(["in", "cmp"]))
        if kind == "in":
            out = draw(_variables)
            fn = draw(_functions)
            args = draw(st.lists(_term_texts, max_size=3))
            literals.append(f"in({out}, d:{fn}({', '.join(args)}))")
        else:
            op = draw(st.sampled_from(["=", "<", "<=", ">", ">=", "!="]))
            left = draw(_term_texts)
            right = draw(_term_texts)
            literals.append(f"{left} {op} {right}")
    return f"{head}({', '.join(head_vars)}) :- {' & '.join(literals)}."


@settings(max_examples=80, deadline=None)
@given(text=rule_texts())
def test_parser_round_trip_on_generated_rules(text):
    program = parse_program(text)
    assert len(program) == 1
    again = parse_program(str(program.rules[0]))
    assert again.rules == program.rules


@settings(max_examples=40, deadline=None)
@given(
    lo=st.integers(0, 50),
    hi=st.integers(51, 100),
    relation=st.sampled_from([">=", "="]),
)
def test_invariant_round_trip_generated(lo, hi, relation):
    text = (
        f"V1 <= {hi} & V1 >= {lo} => "
        f"d:f(T, V1) {relation} d:g(T, {lo})."
    )
    invariant = parse_invariant(text)
    assert parse_invariant(str(invariant)) == invariant

"""Tests for the cursor API, parameterised queries (bindings), and the
relational engine's analytic cost estimator plugged into the DCSM."""

import pytest

from repro.core.mediator import Mediator
from repro.dcsm.module import DCSM
from repro.dcsm.patterns import BOUND, CallPattern
from repro.domains.base import simple_domain
from repro.domains.relational.engine import RelationalEngine
from repro.errors import PlanningError, ReproError


def slow_stream_mediator() -> Mediator:
    """A source whose 100 answers take 1000 simulated ms to stream."""
    mediator = Mediator(init_overhead_ms=0.0, display_cost_ms=0.0)
    mediator.register_domain(
        simple_domain("d", {"f": lambda: (list(range(100)), 10.0, 1000.0)})
    )
    mediator.load_program("p(X) :- in(X, d:f()).")
    return mediator


class TestCursor:
    def test_fetch_batches(self):
        mediator = slow_stream_mediator()
        cursor = mediator.cursor("?- p(X).")
        first = cursor.fetch(3)
        second = cursor.fetch(3)
        assert [a[0] for a in first] == [0, 1, 2]
        assert [a[0] for a in second] == [3, 4, 5]
        assert len(cursor.answers_so_far) == 6

    def test_partial_consumption_charges_partial_time(self):
        mediator = slow_stream_mediator()
        cursor = mediator.cursor("?- p(X).")
        cursor.fetch(5)
        cursor.close()
        assert cursor.elapsed_ms < 100.0  # nowhere near the 1000ms total

    def test_fetch_all_drains(self):
        mediator = slow_stream_mediator()
        cursor = mediator.cursor("?- p(X).")
        everything = cursor.fetch_all()
        assert len(everything) == 100
        assert cursor.exhausted
        assert cursor.fetch(5) == []

    def test_t_first_recorded(self):
        mediator = slow_stream_mediator()
        cursor = mediator.cursor("?- p(X).")
        assert cursor.t_first_ms is None
        cursor.fetch(1)
        assert cursor.t_first_ms == pytest.approx(10.0)

    def test_iteration_protocol(self):
        mediator = slow_stream_mediator()
        values = [answer[0] for answer in mediator.cursor("?- p(X).")]
        assert values == list(range(100))

    def test_context_manager_closes(self):
        mediator = slow_stream_mediator()
        with mediator.cursor("?- p(X).") as cursor:
            cursor.fetch(2)
        assert cursor.closed
        with pytest.raises(ReproError):
            cursor.fetch(1)

    def test_bad_fetch_count(self):
        mediator = slow_stream_mediator()
        with pytest.raises(ReproError):
            mediator.cursor("?- p(X).").fetch(0)

    def test_cursor_with_bindings(self):
        mediator = Mediator(init_overhead_ms=0.0, display_cost_ms=0.0)
        mediator.register_domain(simple_domain("d", {"g": lambda x: [x * 2]}))
        mediator.load_program("double(X, Y) :- in(Y, d:g(X)).")
        cursor = mediator.cursor("?- double(X, Y).", bindings={"X": 21})
        assert cursor.fetch(1) == [(21, 42)]


class TestBindings:
    def make(self) -> Mediator:
        mediator = Mediator(init_overhead_ms=0.0, display_cost_ms=0.0)
        mediator.register_domain(
            simple_domain("d", {"g": lambda x: [x * 2], "h": lambda: [1, 2, 3]})
        )
        mediator.load_program(
            """
            double(X, Y) :- in(Y, d:g(X)).
            pick(X) :- in(X, d:h()).
            """
        )
        return mediator

    def test_bindings_enable_otherwise_unplannable_query(self):
        mediator = self.make()
        with pytest.raises(PlanningError):
            mediator.query("?- double(X, Y).")
        result = mediator.query("?- double(X, Y).", bindings={"X": 5})
        assert result.answers == ((5, 10),)

    def test_bindings_project_into_answers(self):
        mediator = self.make()
        result = mediator.query("?- pick(X).", bindings={"X": 2})
        assert result.answers == ((2,),)  # membership-filtered

    def test_plans_respect_bindings(self):
        mediator = self.make()
        plans = mediator.plans("?- double(X, Y).", bindings={"X": 1})
        assert plans


class TestRelationalExternalEstimator:
    @pytest.fixture
    def engine(self) -> RelationalEngine:
        engine = RelationalEngine("rel")
        engine.create_table(
            "inv",
            ["item", "loc", "qty"],
            [("fuel", "a", 1), ("fuel", "b", 2), ("ammo", "a", 3), ("maps", "c", 4)],
            index_on=["item"],
        )
        return engine

    @pytest.fixture
    def dcsm(self, engine) -> DCSM:
        return DCSM(external_estimators={"rel": engine.make_cost_estimator()})

    def test_all_exact(self, dcsm):
        vector = dcsm.cost(CallPattern("rel", "all", ("inv",)))
        assert vector.cardinality == 4.0

    def test_equal_known_value_exact_cardinality(self, dcsm):
        vector = dcsm.cost(CallPattern("rel", "equal", ("inv", "item", "fuel")))
        assert vector.cardinality == 2.0

    def test_equal_bound_value_average_bucket(self, dcsm):
        vector = dcsm.cost(CallPattern("rel", "equal", ("inv", "item", BOUND)))
        assert vector.cardinality == pytest.approx(4 / 3)

    def test_project_distinct(self, dcsm):
        vector = dcsm.cost(CallPattern("rel", "project", ("inv", "loc")))
        assert vector.cardinality == 3.0

    def test_count_is_singleton(self, dcsm):
        vector = dcsm.cost(CallPattern("rel", "count", ("inv",)))
        assert vector.cardinality == 1.0

    def test_unknown_table_falls_back_to_statistics(self, engine):
        from repro.core.model import GroundCall
        from repro.domains.base import CallResult

        dcsm = DCSM(external_estimators={"rel": engine.make_cost_estimator()})
        dcsm.record(
            CallResult(
                call=GroundCall("rel", "all", ("mystery",)),
                answers=(1, 2),
                t_first_ms=1.0,
                t_all_ms=2.0,
            )
        )
        vector = dcsm.cost(CallPattern("rel", "all", ("mystery",)))
        assert vector.cardinality == 2.0

    def test_range_select_card_filled_from_stats(self, engine):
        """The analytic estimator knows the scan time but not the
        selectivity; the statistics cache supplies the cardinality —
        the paper's missing-parameter merging."""
        from repro.core.model import GroundCall
        from repro.domains.base import CallResult

        dcsm = DCSM(external_estimators={"rel": engine.make_cost_estimator()})
        dcsm.record(
            CallResult(
                call=GroundCall("rel", "select_lt", ("inv", "qty", 3)),
                answers=(1, 2),
                t_first_ms=1.0,
                t_all_ms=999.0,  # deliberately wrong: external time must win
            )
        )
        estimate = dcsm.estimate(CallPattern("rel", "select_lt", ("inv", "qty", 3)))
        assert estimate.vector.cardinality == 2.0  # from statistics
        assert estimate.vector.t_all_ms < 10.0  # from the analytic model
        assert estimate.source.startswith("external")

    def test_indexed_equal_cheaper_than_scan_on_big_tables(self):
        # (on a 4-row table a scan legitimately beats an index probe, so
        # use a table where the index matters)
        engine = RelationalEngine("rel")
        engine.create_table(
            "big",
            ["k", "v"],
            [(i % 50, i) for i in range(1000)],
            index_on=["k"],
        )
        dcsm = DCSM(external_estimators={"rel": engine.make_cost_estimator()})
        indexed = dcsm.cost(CallPattern("rel", "equal", ("big", "k", 7)))
        scanned = dcsm.cost(CallPattern("rel", "equal", ("big", "v", 7)))
        assert indexed.t_all_ms < scanned.t_all_ms / 5

    def test_mediator_integration(self, engine):
        mediator = Mediator()
        mediator.dcsm.external_estimators["rel"] = engine.make_cost_estimator()
        mediator.register_domain(engine, site="cornell")
        mediator.load_program(
            "stock(L) :- in(T, rel:equal('inv', 'item', 'fuel')) & =(T.loc, L)."
        )
        # plans are priceable with zero observations thanks to the
        # analytic estimator
        report_plans = mediator.plans("?- stock(L).")
        estimate = mediator.cost_estimator.estimate(report_plans[0])
        assert estimate.vector.cardinality == 2.0

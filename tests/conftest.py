"""Shared fixtures: small wired testbeds used across the suite.

The whole suite can run against any cache storage backend: the CI
backend matrix exports ``REPRO_STORAGE=memory|sqlite|sharded`` and every
:class:`Mediator` built without an explicit ``storage=`` picks it up
(path-less specs expand to per-mediator files under
``$REPRO_STORAGE_PATH``, which the session fixture below points at a
pytest-managed temp directory).  Memory stays the authoritative read
path, so observable behavior must be identical across backends.
"""

from __future__ import annotations

import os

import pytest

from repro.core.mediator import Mediator
from repro.domains.avis.store import AvisDomain, build_video
from repro.domains.base import simple_domain
from repro.domains.relational.engine import RelationalEngine


@pytest.fixture(scope="session", autouse=True)
def _storage_matrix_root(tmp_path_factory: pytest.TempPathFactory):
    """Route env-selected disk backends into a pytest temp directory."""
    backend = os.environ.get("REPRO_STORAGE", "memory")
    if backend == "memory" or os.environ.get("REPRO_STORAGE_PATH"):
        yield
        return
    root = tmp_path_factory.mktemp("repro-storage")
    os.environ["REPRO_STORAGE_PATH"] = str(root)
    try:
        yield
    finally:
        os.environ.pop("REPRO_STORAGE_PATH", None)


@pytest.fixture
def cast_engine() -> RelationalEngine:
    engine = RelationalEngine("relation")
    engine.create_table(
        "cast",
        ["name", "role"],
        [
            ("stewart", "rupert"),
            ("dall", "brandon"),
            ("granger", "phillip"),
        ],
        index_on=["role"],
    )
    return engine


@pytest.fixture
def small_avis() -> AvisDomain:
    avis = AvisDomain("video")
    avis.add_video(
        build_video(
            "rope",
            240,
            [
                ("brandon", [(1, 210)]),
                ("phillip", [(1, 200)]),
                ("rupert", [(30, 220)]),
                ("rope", [(4, 60)]),
                ("gun", [(130, 160)]),
            ],
        )
    )
    return avis


@pytest.fixture
def m1_mediator() -> Mediator:
    """The paper's M1 mediator over two tiny in-memory domains.

    d1:p holds pairs {(a,1), (a,2), (b,3)};  d2:q holds {(1,x), (2,y), (3,z)}.
    """
    p_pairs = [("a", 1), ("a", 2), ("b", 3)]
    q_pairs = [(1, "x"), (2, "y"), (3, "z")]
    # asymmetric explicit costs: q_ff is the expensive full dump, so the
    # p-first plan genuinely wins and the optimizer has a margin to find
    d1 = simple_domain(
        "d1",
        {
            "p_ff": lambda: ([tuple(pair) for pair in p_pairs], 4.0, 10.0),
            "p_fb": lambda b: ([a for a, bb in p_pairs if bb == b], 8.0, 10.0),
            "p_bb": lambda a, b: ([True] if (a, b) in p_pairs else [], 10.0, 10.0),
        },
    )
    d2 = simple_domain(
        "d2",
        {
            "q_ff": lambda: ([tuple(pair) for pair in q_pairs], 40.0, 100.0),
            "q_bf": lambda b: ([c for bb, c in q_pairs if bb == b], 8.0, 10.0),
        },
    )
    mediator = Mediator()
    mediator.register_domain(d1)
    mediator.register_domain(d2)
    mediator.load_program(
        """
        m(A, C) :- p(A, B) & q(B, C).
        p(A, B) :- in(Ans, d1:p_ff()), =($Ans.1, A), =($Ans.2, B).
        p(A, B) :- in(A, d1:p_fb(B)).
        p(A, B) :- in(X, d1:p_bb(A, B)).
        q(B, C) :- in(Ans, d2:q_ff()), =($Ans.1, B), =($Ans.2, C).
        q(B, C) :- in(C, d2:q_bf(B)).
        """
    )
    return mediator

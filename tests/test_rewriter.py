"""Rule rewriter tests: unfolding, pushdown, reordering, CIM routing."""

import pytest

from repro.core.model import Comparison
from repro.core.terms import Constant
from repro.core.parser import parse_program, parse_query
from repro.core.plans import CompareStep
from repro.core.rewriter import Rewriter, RewriterConfig, _simplify
from repro.core.terms import Variable
from repro.errors import PlanningError, RecursionNotSupportedError

M1 = parse_program(
    """
    m(A, C) :- p(A, B) & q(B, C).
    p(A, B) :- in(Ans, d1:p_ff()), =($Ans.1, A), =($Ans.2, B).
    p(A, B) :- in(A, d1:p_fb(B)).
    p(A, B) :- in(X, d1:p_bb(A, B)).
    q(B, C) :- in(Ans, d2:q_ff()), =($Ans.1, B), =($Ans.2, C).
    q(B, C) :- in(C, d2:q_bf(B)).
    """
)


class TestPaperExample:
    """The paper's (M1)/(Q7) worked example from §5."""

    def setup_method(self):
        self.rewriter = Rewriter(M1)
        self.plans = self.rewriter.plans(parse_query("?- m(a, C)."))

    def test_multiple_plans_found(self):
        assert len(self.plans) >= 4

    def test_p8_like_plan_exists(self):
        """d1 first (filtered to A=a), then d2:q_bf(B) — the paper's (P8)."""
        assert any(
            adorns == ("d1:p_ff^f", "d2:q_bf^bf")
            for adorns in (plan.adornments() for plan in self.plans)
        )

    def test_p12_like_plan_exists(self):
        """d2:q_ff first, then p with both args bound — the paper's (P12)."""
        assert any(
            adorns == ("d2:q_ff^f", "d1:p_bb^bbf")
            for adorns in (plan.adornments() for plan in self.plans)
        )

    def test_unexecutable_order_excluded(self):
        """q_bf(B) can never run before B is bound."""
        for plan in self.plans:
            first_call = plan.call_steps()[0]
            assert first_call.atom.call.function in ("p_ff", "q_ff")

    def test_selection_pushed_into_call(self):
        """Plans using p_bb have the constant 'a' inside the call args."""
        for plan in self.plans:
            for call_step in plan.call_steps():
                if call_step.atom.call.function == "p_bb":
                    assert Constant("a") in call_step.atom.call.args

    def test_plans_are_deduplicated(self):
        signatures = [plan.signature() for plan in self.plans]
        assert len(signatures) == len(set(signatures))

    def test_answer_vars_preserved(self):
        for plan in self.plans:
            assert plan.answer_vars == (Variable("C"),)


class TestBindingPropagation:
    def test_answer_var_bound_to_constant_still_projected(self):
        program = parse_program("p(X) :- in(Y, d:f()) & =(X, 1).")
        plans = Rewriter(program).plans(parse_query("?- p(X)."))
        assert plans
        # X must be bound somewhere in every plan
        for plan in plans:
            comparisons = [
                s.comparison for s in plan.steps if isinstance(s, CompareStep)
            ]
            assert any(Variable("X") in c.variables() for c in comparisons)

    def test_query_constant_reaches_source(self):
        program = parse_program("p(A, B) :- in(B, d:f(A)).")
        plans = Rewriter(program).plans(parse_query("?- p(7, B)."))
        call = plans[0].call_steps()[0].atom.call
        assert call.args == (Constant(7),)


class TestSimplification:
    def test_true_comparison_dropped(self):
        literals = (Comparison("=", Constant(1), Constant(1)),)
        assert _simplify(literals) == ()

    def test_false_comparison_kills_expansion(self):
        literals = (Comparison("=", Constant(1), Constant(2)),)
        assert _simplify(literals) is None

    def test_dead_rule_branch_removed(self):
        program = parse_program(
            """
            p(X) :- in(X, d:f()) & =(X, X).
            top(X) :- p(X) & 1 = 2.
            """
        )
        with pytest.raises(PlanningError):
            Rewriter(program).plans(parse_query("?- top(X)."))

    def test_constant_head_mismatch_prunes_rule(self):
        program = parse_program(
            """
            p(a, X) :- in(X, d:f()).
            p(b, X) :- in(X, d:g()).
            """
        )
        plans = Rewriter(program).plans(parse_query("?- p(a, X)."))
        functions = {
            s.atom.call.function for plan in plans for s in plan.call_steps()
        }
        assert functions == {"f"}


class TestErrors:
    def test_recursive_program_rejected(self):
        program = parse_program("p(X) :- p(X).")
        with pytest.raises(RecursionNotSupportedError):
            Rewriter(program)

    def test_undefined_predicate(self):
        program = parse_program("p(X) :- q(X).")
        with pytest.raises(PlanningError):
            Rewriter(program).plans(parse_query("?- p(X)."))

    def test_no_executable_order(self):
        # d:f needs X bound but nothing ever binds it
        program = parse_program("p(Y) :- in(Y, d:f(X)).")
        with pytest.raises(PlanningError):
            Rewriter(program).plans(parse_query("?- p(Y)."))


class TestConfigBounds:
    def test_max_plans_respected(self):
        config = RewriterConfig(max_plans=2)
        plans = Rewriter(M1, config).plans(parse_query("?- m(a, C)."))
        assert len(plans) <= 2

    def test_deep_unfolding(self):
        rules = ["top(X) :- l1(X)."]
        for i in range(1, 6):
            rules.append(f"l{i}(X) :- l{i + 1}(X).")
        rules.append("l6(X) :- in(X, d:f()).")
        program = parse_program("\n".join(rules))
        plans = Rewriter(program).plans(parse_query("?- top(X)."))
        assert len(plans) == 1

    def test_depth_limit_blocks_very_deep(self):
        rules = ["top(X) :- l1(X)."]
        for i in range(1, 30):
            rules.append(f"l{i}(X) :- l{i + 1}(X).")
        rules.append("l30(X) :- in(X, d:f()).")
        program = parse_program("\n".join(rules))
        config = RewriterConfig(max_depth=5)
        with pytest.raises(PlanningError):
            Rewriter(program, config).plans(parse_query("?- top(X)."))


class TestCimRouting:
    def test_with_cim_all(self):
        plans = Rewriter(M1).plans(parse_query("?- m(a, C)."))
        routed = plans[0].with_cim(None)
        assert all(s.via_cim for s in routed.call_steps())

    def test_with_cim_subset(self):
        plans = Rewriter(M1).plans(parse_query("?- m(a, C)."))
        routed = plans[0].with_cim({"d1"})
        for call_step in routed.call_steps():
            expected = call_step.atom.call.domain == "d1"
            assert call_step.via_cim is expected


class TestDirectDomainCallQueries:
    def test_query_of_bare_in_atom(self):
        program = parse_program("dummy(X) :- in(X, d:f()).")
        plans = Rewriter(program).plans(parse_query("?- in(X, d:f(1))."))
        assert len(plans) == 1
        assert plans[0].call_steps()[0].atom.call.args == (Constant(1),)

    def test_conjunctive_direct_query(self):
        program = parse_program("dummy(X) :- in(X, d:f()).")
        query = parse_query("?- in(X, d:f()) & in(Y, e:g(X)) & Y < 9.")
        plans = Rewriter(program).plans(query)
        assert plans
        assert plans[0].adornments()[0] == "d:f^f"

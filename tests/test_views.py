"""Materialized mediated view tests (paper §9)."""

import pytest

from repro.core.mediator import Mediator
from repro.core.views import ViewManager
from repro.domains.base import simple_domain
from repro.errors import ReproError


@pytest.fixture
def mediator() -> Mediator:
    state = {"rows": [("a", 1), ("a", 2), ("b", 3)]}
    mediator = Mediator()
    mediator.register_domain(
        simple_domain(
            "d",
            {"p_ff": lambda: ([tuple(r) for r in state["rows"]], 20.0, 120.0)},
        ),
        site="italy",
    )
    mediator.load_program(
        "pairs(A, B) :- in(Ans, d:p_ff()), =($Ans.1, A), =($Ans.2, B)."
    )
    mediator._test_state = state  # test hook to mutate the source
    return mediator


class TestMaterialize:
    def test_view_answers_match_defining_query(self, mediator):
        views = ViewManager(mediator)
        view = views.materialize("cached_pairs", "?- pairs(A, B).")
        assert view.cardinality == 3
        result = mediator.query("?- cached_pairs(A, B).")
        assert sorted(result.answers) == sorted(
            mediator.query("?- pairs(A, B).").answers
        )

    def test_view_queries_are_local_fast(self, mediator):
        views = ViewManager(mediator)
        views.materialize("cached_pairs", "?- pairs(A, B).")
        remote = mediator.query("?- pairs(A, B).")
        local = mediator.query("?- cached_pairs(A, B).")
        assert local.t_all_ms < remote.t_all_ms / 100

    def test_view_joins_like_any_predicate(self, mediator):
        views = ViewManager(mediator)
        views.materialize("cached_pairs", "?- pairs(A, B).")
        mediator.add_rule("big(A) :- cached_pairs(A, B) & B > 1.")
        result = mediator.query("?- big(A).")
        assert sorted(result.answers) == [("a",), ("b",)]

    def test_view_projection_query(self, mediator):
        views = ViewManager(mediator)
        views.materialize("cached_pairs", "?- pairs(A, B).")
        result = mediator.query("?- cached_pairs(a, B).")
        assert sorted(result.column("B")) == [1, 2]

    def test_bad_view_name_rejected(self, mediator):
        views = ViewManager(mediator)
        with pytest.raises(ReproError):
            views.materialize("Bad-Name", "?- pairs(A, B).")

    def test_view_over_view(self, mediator):
        views = ViewManager(mediator)
        views.materialize("cached_pairs", "?- pairs(A, B).")
        # the defining query projects only B, so the view has one column
        views.materialize("a_only", "?- cached_pairs(a, B).")
        result = mediator.query("?- a_only(B).")
        assert sorted(result.column("B")) == [1, 2]


class TestStalenessAndRefresh:
    def test_view_is_a_snapshot(self, mediator):
        views = ViewManager(mediator)
        views.materialize("cached_pairs", "?- pairs(A, B).")
        mediator._test_state["rows"].append(("c", 4))
        stale = mediator.query("?- cached_pairs(A, B).")
        assert stale.cardinality == 3  # still the old extent

    def test_refresh_picks_up_changes(self, mediator):
        views = ViewManager(mediator)
        views.materialize("cached_pairs", "?- pairs(A, B).")
        mediator._test_state["rows"].append(("c", 4))
        refreshed = views.refresh("cached_pairs")
        assert refreshed.cardinality == 4
        assert refreshed.refreshes == 1
        assert mediator.query("?- cached_pairs(A, B).").cardinality == 4

    def test_staleness_tracks_clock(self, mediator):
        views = ViewManager(mediator)
        views.materialize("cached_pairs", "?- pairs(A, B).")
        mediator.clock.advance(500.0)
        assert views.staleness_ms("cached_pairs") == pytest.approx(500.0)

    def test_drop_removes_view_and_rule(self, mediator):
        views = ViewManager(mediator)
        views.materialize("cached_pairs", "?- pairs(A, B).")
        views.drop("cached_pairs")
        from repro.errors import PlanningError

        with pytest.raises(PlanningError):
            mediator.query("?- cached_pairs(A, B).")
        with pytest.raises(ReproError):
            views.refresh("cached_pairs")

    def test_materialize_again_after_drop(self, mediator):
        views = ViewManager(mediator)
        views.materialize("cached_pairs", "?- pairs(A, B).")
        views.drop("cached_pairs")
        view = views.materialize("cached_pairs", "?- pairs(A, B).")
        assert view.cardinality == 3
        assert mediator.query("?- cached_pairs(A, B).").cardinality == 3

    def test_rematerialize_same_name_replaces_extent(self, mediator):
        views = ViewManager(mediator)
        views.materialize("cached_pairs", "?- pairs(A, B).")
        mediator._test_state["rows"].append(("c", 4))
        views.materialize("cached_pairs", "?- pairs(A, B).")
        # only one rule installed: planning still works and sees new rows
        result = mediator.query("?- cached_pairs(A, B).")
        assert result.cardinality == 4


class TestOptimizerInteraction:
    def test_optimizer_prefers_view_access_path(self, mediator):
        """With both the remote rule and a view rule defining the same
        predicate, the optimizer should pick the view branch."""
        views = ViewManager(mediator)
        views.materialize("cached_pairs", "?- pairs(A, B).")
        # make the view an ALTERNATIVE access path for pairs itself
        mediator.add_rule(
            "pairs(A, B) :- cached_pairs(A, B)."
        )
        # train both branches
        for plan in mediator.plans("?- pairs(A, B)."):
            mediator.query("?- pairs(A, B).", plan=plan)
        result = mediator.query("?- pairs(A, B).")
        # chosen plan must route through the views domain
        domains = {s.atom.call.domain for s in result.chosen.call_steps()}
        assert domains == {"views"}
        assert result.t_all_ms < 10.0

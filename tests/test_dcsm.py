"""DCSM tests: vectors, patterns, database, summarization, estimation,
and the module façade — including the paper's §6.1/§6.3 worked examples."""

import pytest

from repro.core.model import GroundCall
from repro.core.parser import parse_program
from repro.dcsm.database import CostVectorDatabase
from repro.dcsm.estimation import CostEstimator
from repro.dcsm.module import DCSM, MODE_LOSSLESS, MODE_LOSSY, MODE_RAW
from repro.dcsm.patterns import BOUND, Bound, CallPattern
from repro.dcsm.summary import (
    SummaryTable,
    instantiable_positions,
    lossy_dims_from_program,
)
from repro.dcsm.vectors import CostVector, Observation
from repro.domains.base import CallResult
from repro.errors import EstimationError


def obs(args, card, t_all, t_first=None, complete=True, when=0.0,
        domain="d1", function="p_bf") -> Observation:
    t_first = t_first if t_first is not None else t_all / 2
    return Observation(
        call=GroundCall(domain, function, tuple(args)),
        vector=CostVector(t_first, t_all, float(card)),
        record_time_ms=when,
        complete=complete,
    )


#: The paper's table (T16): d1:p_bf observations.
T16 = [
    obs(("a",), 2, 2.00),
    obs(("a",), 2, 2.20),
    obs(("b",), 3, 2.80),
    obs(("c",), 1, 2.84),
]


class TestCostVector:
    def test_full_and_empty(self):
        assert CostVector(1, 2, 3).is_full()
        assert CostVector(None, None, None).is_empty()
        assert not CostVector(1, None, 3).is_full()

    def test_fill_missing(self):
        partial = CostVector(1.0, None, None)
        filled = partial.fill_missing_from(CostVector(9.0, 2.0, 3.0))
        assert filled == CostVector(1.0, 2.0, 3.0)

    def test_require_full(self):
        with pytest.raises(EstimationError):
            CostVector(1.0, None, 1.0).require_full()

    def test_str(self):
        assert "?" in str(CostVector(None, 2.0, 3.0))


class TestPatterns:
    def test_bound_singleton(self):
        assert Bound() is BOUND
        assert repr(BOUND) == "$b"

    def test_mask(self):
        pattern = CallPattern("d", "f", ("a", BOUND, 2))
        assert pattern.mask == (0, 2)
        assert pattern.num_constants == 2

    def test_matches(self):
        pattern = CallPattern("d", "f", ("a", BOUND))
        assert pattern.matches(GroundCall("d", "f", ("a", 99)))
        assert not pattern.matches(GroundCall("d", "f", ("b", 99)))
        assert not pattern.matches(GroundCall("d", "g", ("a", 99)))
        assert not pattern.matches(GroundCall("d", "f", ("a",)))

    def test_relaxations_rightmost_first(self):
        pattern = CallPattern("d", "f", ("a", "b", BOUND))
        relaxed = list(pattern.relaxations())
        assert relaxed[0].args == ("a", BOUND, BOUND)
        assert relaxed[1].args == (BOUND, "b", BOUND)

    def test_relax_already_bound_rejected(self):
        pattern = CallPattern("d", "f", (BOUND,))
        with pytest.raises(ValueError):
            pattern.relax(0)

    def test_generalizes(self):
        specific = CallPattern("d", "f", ("a", 2))
        general = CallPattern("d", "f", ("a", BOUND))
        assert general.generalizes(specific)
        assert not specific.generalizes(general)
        assert general.generalizes(general)

    def test_restrict_to(self):
        pattern = CallPattern("d", "f", ("a", "b", "c"))
        assert pattern.restrict_to((1,)).args == (BOUND, "b", BOUND)

    def test_from_call(self):
        call = GroundCall("d", "f", (1, 2))
        assert CallPattern.from_call(call).args == (1, 2)

    def test_str(self):
        pattern = CallPattern("d", "f", ("a", BOUND, 3))
        assert str(pattern) == "d:f('a', $b, 3)"


class TestDatabase:
    def test_record_and_bucket(self):
        db = CostVectorDatabase()
        for observation in T16:
            db.record(observation)
        assert len(db) == 4
        assert db.functions() == (("d1", "p_bf"),)

    def test_paper_exact_average(self):
        """§6.1: cost of d1:p_bf('a') = avg(2.00, 2.20) = 2.10."""
        db = CostVectorDatabase()
        for observation in T16:
            db.record(observation)
        vector, trace = db.estimate(CallPattern("d1", "p_bf", ("a",)))
        assert vector.t_all_ms == pytest.approx(2.10)
        assert vector.cardinality == pytest.approx(2.0)
        assert trace.observations_matched == 2

    def test_paper_bound_average(self):
        """§6.1: cost of d1:p_bf($b) = avg of all four = 2.46."""
        db = CostVectorDatabase()
        for observation in T16:
            db.record(observation)
        vector, __ = db.estimate(CallPattern("d1", "p_bf", (BOUND,)))
        assert vector.t_all_ms == pytest.approx((2.00 + 2.20 + 2.80 + 2.84) / 4)

    def test_incomplete_excluded_from_t_all_and_card(self):
        db = CostVectorDatabase()
        db.record(obs(("a",), 2, 2.0))
        db.record(obs(("a",), 99, 99.0, complete=False))
        vector, __ = db.estimate(CallPattern("d1", "p_bf", ("a",)))
        assert vector.t_all_ms == pytest.approx(2.0)
        assert vector.cardinality == pytest.approx(2.0)
        # but T_first still counts the incomplete run
        assert vector.t_first_ms == pytest.approx((1.0 + 49.5) / 2)

    def test_recency_weighting_prefers_recent(self):
        db = CostVectorDatabase()
        db.record(obs(("a",), 1, 100.0, when=0.0))
        db.record(obs(("a",), 1, 10.0, when=10_000.0))
        flat, __ = db.estimate(CallPattern("d1", "p_bf", ("a",)))
        weighted, __ = db.estimate(
            CallPattern("d1", "p_bf", ("a",)), now_ms=10_000.0, decay_tau_ms=1_000.0
        )
        assert flat.t_all_ms == pytest.approx(55.0)
        assert weighted.t_all_ms < 11.0

    def test_bounded_retention(self):
        db = CostVectorDatabase(max_observations_per_function=2)
        for observation in T16:
            db.record(observation)
        assert len(db) == 2
        # the most recent survive
        vector, __ = db.estimate(CallPattern("d1", "p_bf", (BOUND,)))
        assert vector.t_all_ms == pytest.approx((2.80 + 2.84) / 2)

    def test_empty_estimate_is_empty_vector(self):
        db = CostVectorDatabase()
        vector, trace = db.estimate(CallPattern("d", "f", (BOUND,)))
        assert vector.is_empty()
        assert trace.observations_scanned == 0


class TestSummaryTable:
    def make_lossless(self) -> SummaryTable:
        return SummaryTable.summarize(T16, "d1", "p_bf", 1)

    def test_lossless_grouping(self):
        table = self.make_lossless()
        assert table.is_lossless
        assert len(table.rows) == 3  # groups a, b, c
        assert table.rows[("a",)].count == 2  # the paper's "l" column

    def test_lossless_lookup_matches_raw_average(self):
        table = self.make_lossless()
        vector = table.lookup(CallPattern("d1", "p_bf", ("a",)))
        assert vector.t_all_ms == pytest.approx(2.10)

    def test_lookup_wrong_dims_returns_none(self):
        table = self.make_lossless()
        assert table.lookup(CallPattern("d1", "p_bf", (BOUND,))) is None

    def test_aggregate_over_all_groups(self):
        table = self.make_lossless()
        vector, scanned = table.aggregate(CallPattern("d1", "p_bf", (BOUND,)))
        assert vector.t_all_ms == pytest.approx(2.46)
        assert scanned == 3

    def test_coarsen_to_global(self):
        table = self.make_lossless()
        coarse = table.coarsen(())
        assert coarse.is_global
        assert len(coarse.rows) == 1
        vector = coarse.lookup(CallPattern("d1", "p_bf", (BOUND,)))
        # count-weighted: coarsening is exact aggregation
        assert vector.t_all_ms == pytest.approx(2.46)

    def test_coarsen_rejects_non_subset(self):
        table = SummaryTable.summarize(T16, "d1", "p_bf", 1, dims=())
        with pytest.raises(ValueError):
            table.coarsen((0,))

    def test_size_cells_smaller_when_lossy(self):
        lossless = self.make_lossless()
        lossy = lossless.coarsen(())
        assert lossy.size_cells() < lossless.size_cells()

    def test_unknown_group_lookup(self):
        table = self.make_lossless()
        assert table.lookup(CallPattern("d1", "p_bf", ("zzz",))) is None


class TestInstantiableAnalysis:
    def test_constants_and_head_vars_instantiable(self):
        program = parse_program(
            "p(A) :- in(X, d:f('fixed', A, Y)) & in(Y, e:g())."
        )
        table = instantiable_positions(program)
        # position 0 is a constant, position 1 a head variable, position 2
        # is fed by e:g's output → not instantiable
        assert table[("d", "f")] == {0, 1}

    def test_lossy_dims_from_program(self):
        program = parse_program(
            "p(A) :- in(X, d:f('fixed', A, Y)) & in(Y, e:g())."
        )
        assert lossy_dims_from_program(program, "d", "f", 3) == (0, 1)
        assert lossy_dims_from_program(program, "e", "g", 0) == ()
        assert lossy_dims_from_program(program, "zz", "zz", 2) == ()

    def test_paper_hidden_predicate_example(self):
        """§6.2.2: p and q hidden behind m — the B attribute of q_bf can
        never be probed with a constant."""
        program = parse_program(
            """
            m(A, C) :- p(A, B) & q(B, C).
            p(A, B) :- in(Ans, d1:p_ff()), =($Ans.1, A), =($Ans.2, B).
            q(B, C) :- in(C, d2:q_bf(B)).
            """
        )
        assert lossy_dims_from_program(program, "d2", "q_bf", 1) == ()


class TestEstimationAlgorithm:
    def test_relaxation_falls_through_tables(self):
        """§6.3's example: exact-dims table missing → relax to a coarser
        one, then the global."""
        observations = [
            obs(("a", 1, "x"), 2, 10.0, domain="d", function="f"),
            obs(("b", 2, "x"), 4, 20.0, domain="d", function="f"),
            obs(("b", 2, "y"), 6, 30.0, domain="d", function="f"),
        ]
        # tables: dims {2} (i.e. d:f($b,$b,C)) and the global
        by_c = SummaryTable.summarize(observations, "d", "f", 3, dims=(2,))
        global_table = SummaryTable.summarize(observations, "d", "f", 3, dims=())
        estimator = CostEstimator([by_c, global_table], use_raw_fallback=False)
        # request d:f('a', $b, 'x'): no dims-{0,2} table → relax pos 0 →
        # d:f($b,$b,'x') answered by the by_c table
        estimate = estimator.estimate(CallPattern("d", "f", ("a", BOUND, "x")))
        assert estimate.vector.t_all_ms == pytest.approx(15.0)
        assert estimate.relaxations == 1
        # request with unseen C value: falls to global average
        estimate2 = estimator.estimate(CallPattern("d", "f", (BOUND, BOUND, "z")))
        assert estimate2.vector.t_all_ms == pytest.approx(20.0)

    def test_no_stats_raises(self):
        estimator = CostEstimator([], use_raw_fallback=False)
        with pytest.raises(EstimationError):
            estimator.estimate(CallPattern("d", "f", (BOUND,)))

    def test_raw_fallback(self):
        db = CostVectorDatabase()
        for observation in T16:
            db.record(observation)
        estimator = CostEstimator([], database=db, use_raw_fallback=True)
        estimate = estimator.estimate(CallPattern("d1", "p_bf", ("a",)))
        assert estimate.source == "raw"
        assert estimate.vector.t_all_ms == pytest.approx(2.10)

    def test_work_counters(self):
        table = SummaryTable.summarize(T16, "d1", "p_bf", 1)
        estimator = CostEstimator([table], use_raw_fallback=False)
        estimator.estimate(CallPattern("d1", "p_bf", (BOUND,)))
        assert estimator.stats.table_rows_scanned >= 3


class TestModuleFacade:
    def make_trained(self, mode=MODE_LOSSLESS) -> DCSM:
        dcsm = DCSM(mode=mode)
        for observation in T16:
            dcsm.record(
                CallResult(
                    call=observation.call,
                    answers=tuple(range(int(observation.vector.cardinality))),
                    t_first_ms=observation.vector.t_first_ms,
                    t_all_ms=observation.vector.t_all_ms,
                )
            )
        return dcsm

    def test_modes_agree_on_exact_when_lossless(self):
        lossless = self.make_trained(MODE_LOSSLESS)
        raw = self.make_trained(MODE_RAW)
        pattern = CallPattern("d1", "p_bf", ("a",))
        assert lossless.cost(pattern).t_all_ms == pytest.approx(
            raw.cost(pattern).t_all_ms
        )

    def test_lossy_drop_all_gives_global_average(self):
        dcsm = self.make_trained(MODE_LOSSY)
        dcsm.configure_lossy_drop_all()
        vector = dcsm.cost(CallPattern("d1", "p_bf", ("a",)))
        assert vector.t_all_ms == pytest.approx(2.46)

    def test_summaries_rebuilt_after_new_observations(self):
        dcsm = self.make_trained()
        before = dcsm.cost(CallPattern("d1", "p_bf", ("a",))).t_all_ms
        dcsm.record(
            CallResult(
                call=GroundCall("d1", "p_bf", ("a",)),
                answers=(0,),
                t_first_ms=50.0,
                t_all_ms=100.0,
            )
        )
        after = dcsm.cost(CallPattern("d1", "p_bf", ("a",))).t_all_ms
        assert after > before

    def test_prior_vector_used_when_no_stats(self):
        dcsm = DCSM(prior_vector=CostVector(1.0, 2.0, 3.0))
        vector = dcsm.cost(CallPattern("never", "seen", (BOUND,)))
        assert vector.t_all_ms == 2.0

    def test_no_stats_no_prior_raises(self):
        dcsm = DCSM()
        with pytest.raises(EstimationError):
            dcsm.cost(CallPattern("never", "seen", (BOUND,)))

    def test_external_estimator_delegation(self):
        external = lambda pattern: CostVector(1.0, 2.0, 3.0)
        dcsm = DCSM(external_estimators={"rdbms": external})
        estimate = dcsm.estimate(CallPattern("rdbms", "q", (BOUND,)))
        assert estimate.source == "external"
        assert estimate.vector.t_all_ms == 2.0

    def test_external_partial_filled_from_stats(self):
        external = lambda pattern: CostVector(None, None, 7.0)  # only Card
        dcsm = DCSM(external_estimators={"d1": external})
        for observation in T16:
            dcsm.record(
                CallResult(
                    call=observation.call,
                    answers=(1, 2),
                    t_first_ms=observation.vector.t_first_ms,
                    t_all_ms=observation.vector.t_all_ms,
                )
            )
        estimate = dcsm.estimate(CallPattern("d1", "p_bf", ("a",)))
        assert estimate.vector.cardinality == 7.0  # external wins
        assert estimate.vector.t_all_ms == pytest.approx(2.10)  # stats fill
        assert estimate.source.startswith("external+")

    def test_probe_tracking_and_suggestion(self):
        dcsm = self.make_trained()
        dcsm.cost(CallPattern("d1", "p_bf", ("a",)))
        dcsm.cost(CallPattern("d1", "p_bf", (BOUND,)))
        assert dcsm.suggest_dims("d1", "p_bf") == (0,)

    def test_size_accounting_lossy_smaller(self):
        lossless = self.make_trained(MODE_LOSSLESS)
        lossy = self.make_trained(MODE_LOSSY)
        lossy.configure_lossy_drop_all()
        assert lossy.size_cells() < lossless.size_cells()

    def test_predicate_first_statistics(self):
        dcsm = DCSM()
        assert dcsm.predicate_first_estimate("m", 2) is None
        dcsm.record_predicate_first("m", 2, 10.0)
        dcsm.record_predicate_first("m", 2, 20.0)
        assert dcsm.predicate_first_estimate("m", 2) == pytest.approx(15.0)

    def test_bad_mode_rejected(self):
        with pytest.raises(EstimationError):
            DCSM(mode="psychic")

"""AST model tests: comparisons, programs, ground calls, invariants."""

import pytest

from repro.core.model import (
    Comparison,
    DomainCall,
    GroundCall,
    InAtom,
    Invariant,
    INVARIANT_EQ,
    Predicate,
    Query,
    Rule,
    evaluate_comparison,
    make_in,
    make_rule,
)
from repro.core.parser import parse_program
from repro.core.terms import Constant, Variable
from repro.errors import InvariantError, NotGroundError, ReproError

X, Y = Variable("X"), Variable("Y")


class TestComparisons:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("=", 1, 1, True),
            ("=", 1, 2, False),
            ("!=", 1, 2, True),
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 1, 2, False),
        ],
    )
    def test_evaluate(self, op, left, right, expected):
        assert evaluate_comparison(op, left, right) is expected

    def test_unknown_operator(self):
        with pytest.raises(ReproError):
            evaluate_comparison("~", 1, 2)

    def test_mixed_types_ordered_is_total(self):
        # must not raise; just needs to be deterministic
        first = evaluate_comparison("<", 1, "a")
        second = evaluate_comparison("<", 1, "a")
        assert first == second
        assert evaluate_comparison("<", 1, "a") != evaluate_comparison(">=", 1, "a")

    def test_mixed_types_equality(self):
        assert evaluate_comparison("=", 1, "1") is False

    def test_comparison_evaluate_with_subst(self):
        comparison = Comparison("<", X, Constant(5))
        assert comparison.evaluate({X: Constant(3)}) is True
        assert comparison.evaluate({X: Constant(7)}) is False

    def test_comparison_unbound_raises(self):
        comparison = Comparison("<", X, Constant(5))
        with pytest.raises(NotGroundError):
            comparison.evaluate({})

    def test_negated(self):
        assert Comparison("<", X, Y).negated() == Comparison(">=", X, Y)
        assert Comparison("=", X, Y).negated() == Comparison("!=", X, Y)


class TestGroundCall:
    def test_hashable_and_equal(self):
        c1 = GroundCall("d", "f", (1, "a"))
        c2 = GroundCall("d", "f", (1, "a"))
        assert c1 == c2
        assert len({c1, c2}) == 1

    def test_str(self):
        call = GroundCall("d", "f", ("a", 3))
        assert str(call) == "d:f('a', 3)"

    def test_domain_call_ground(self):
        call = DomainCall("d", "f", (X, Constant(2)))
        ground = call.ground({X: Constant(1)})
        assert ground == GroundCall("d", "f", (1, 2))

    def test_domain_call_ground_raises_unbound(self):
        call = DomainCall("d", "f", (X,))
        with pytest.raises(NotGroundError):
            call.ground({})

    def test_as_call_round_trip(self):
        ground = GroundCall("d", "f", (1, "a"))
        assert ground.as_call().ground({}) == ground


class TestProgram:
    def test_rules_for(self):
        program = parse_program("p(X) :- in(X, d:f()).\np(X, Y) :- in(X, d:g(Y)).")
        assert len(program.rules_for("p", 1)) == 1
        assert len(program.rules_for("p", 2)) == 1
        assert program.rules_for("p", 3) == ()

    def test_domain_calls_enumeration(self):
        program = parse_program("p(X) :- in(X, d:f()) & in(Y, e:g(X)).")
        calls = program.domain_calls()
        assert {c.qualified_name for c in calls} == {"d:f", "e:g"}

    def test_non_recursive(self):
        program = parse_program("p(X) :- q(X).\nq(X) :- in(X, d:f()).")
        assert not program.is_recursive()

    def test_direct_recursion(self):
        program = parse_program("p(X) :- p(X).")
        assert program.is_recursive()

    def test_mutual_recursion(self):
        program = parse_program("p(X) :- q(X).\nq(X) :- p(X).")
        assert program.is_recursive()

    def test_diamond_is_not_recursion(self):
        program = parse_program(
            "a(X) :- b(X), c(X).\nb(X) :- d(X).\nc(X) :- d(X).\n"
            "d(X) :- in(X, s:f())."
        )
        assert not program.is_recursive()


class TestQueryDefaults:
    def test_answer_vars_in_first_use_order(self):
        query = Query(goals=(Predicate("p", (Y, X)),))
        assert query.answer_vars == (X, Y) or query.answer_vars == (Y, X)
        # deterministic across runs
        assert Query(goals=(Predicate("p", (Y, X)),)).answer_vars == query.answer_vars

    def test_explicit_answer_vars_respected(self):
        query = Query(goals=(Predicate("p", (X, Y)),), answer_vars=(Y,))
        assert query.answer_vars == (Y,)


class TestInvariantValidation:
    def test_valid(self):
        inv = Invariant(
            condition=(Comparison("<", X, Constant(5)),),
            left=DomainCall("d", "f", (X,)),
            relation=INVARIANT_EQ,
            right=DomainCall("d", "g", (X,)),
        )
        inv.validate()  # no exception

    def test_bad_relation(self):
        inv = Invariant((), DomainCall("d", "f", ()), "~", DomainCall("d", "g", ()))
        with pytest.raises(InvariantError):
            inv.validate()

    def test_unsafe_condition_variable(self):
        inv = Invariant(
            condition=(Comparison("<", Variable("Loose"), Constant(5)),),
            left=DomainCall("d", "f", (X,)),
            relation=INVARIANT_EQ,
            right=DomainCall("d", "g", (X,)),
        )
        with pytest.raises(InvariantError):
            inv.validate()


class TestBuilders:
    def test_make_in(self):
        atom = make_in(X, "d", "f", 1, "a")
        assert isinstance(atom, InAtom)
        assert atom.call.args == (Constant(1), Constant("a"))

    def test_make_rule(self):
        rule = make_rule(Predicate("p", (X,)), make_in(X, "d", "f"))
        assert isinstance(rule, Rule)
        assert len(rule.body) == 1

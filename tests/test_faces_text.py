"""Tests for the face-recognition and text-retrieval substrates,
including their invariants through the CIM."""

import pytest

from repro.cim.manager import CacheInvariantManager, CimPolicy
from repro.core.model import GroundCall
from repro.core.parser import parse_invariant
from repro.domains.faces import (
    FACE_FLOOR_INVARIANT,
    FACE_THRESHOLD_INVARIANT,
    FaceDomain,
    cosine,
)
from repro.domains.registry import DomainRegistry
from repro.domains.text import (
    TEXT_COMMUTE_INVARIANT,
    TEXT_CONJUNCTION_INVARIANT,
    TextDomain,
    sample_newswire,
    tokenize,
)
from repro.errors import BadCallError
from repro.net.clock import SimClock


# ---------------------------------------------------------------------------
# Faces
# ---------------------------------------------------------------------------


@pytest.fixture
def faces() -> FaceDomain:
    domain = FaceDomain(dimensions=8)
    # generous spread: a smooth similarity distribution so thresholds
    # between 0 and 1 separate faces
    domain.enroll_random([f"face{i:02d}" for i in range(20)], seed=3, spread=0.8)
    return domain


class TestFaceDomain:
    def test_vectors_normalized(self, faces):
        for face_id in faces.face_ids():
            vector = faces.features(face_id)
            assert sum(x * x for x in vector) == pytest.approx(1.0)

    def test_match_includes_self(self, faces):
        result = faces.execute(GroundCall("faces", "match", ("face00", 0.99)))
        assert any(row.name == "face00" for row in result.answers)

    def test_match_threshold_monotone(self, faces):
        loose = faces.execute(GroundCall("faces", "match", ("face00", 0.0)))
        tight = faces.execute(GroundCall("faces", "match", ("face00", 0.9)))
        loose_names = {row.name for row in loose.answers}
        tight_names = {row.name for row in tight.answers}
        assert tight_names <= loose_names
        assert len(loose_names) > len(tight_names)

    def test_match_floor_returns_whole_gallery(self, faces):
        everything = faces.execute(GroundCall("faces", "match", ("face00", -1)))
        assert len(everything.answers) == 20

    def test_best_match_excludes_self(self, faces):
        result = faces.execute(GroundCall("faces", "best_match", ("face00",)))
        assert result.cardinality == 1
        assert result.answers[0].name != "face00"
        # best-match cannot stream
        assert result.t_first_ms == result.t_all_ms

    def test_similarity_symmetric(self, faces):
        ab = faces.execute(GroundCall("faces", "similarity", ("face00", "face01")))
        ba = faces.execute(GroundCall("faces", "similarity", ("face01", "face00")))
        assert ab.answers == ba.answers

    def test_clustered_enrollment_is_meaningful(self, faces):
        # same-cluster faces (i % 4 equal) are closer than cross-cluster
        same = cosine(faces.features("face00"), faces.features("face04"))
        cross = cosine(faces.features("face00"), faces.features("face01"))
        assert same > cross

    def test_unknown_face(self, faces):
        with pytest.raises(BadCallError):
            faces.execute(GroundCall("faces", "match", ("nobody", 0.5)))

    def test_bad_threshold(self, faces):
        with pytest.raises(BadCallError):
            faces.execute(GroundCall("faces", "match", ("face00", "high")))

    def test_dimension_validation(self):
        domain = FaceDomain(dimensions=4)
        with pytest.raises(BadCallError):
            domain.add_face("x", [1.0, 2.0])
        with pytest.raises(BadCallError):
            domain.add_face("x", [0.0, 0.0, 0.0, 0.0])

    def test_duplicate_face(self, faces):
        with pytest.raises(BadCallError):
            faces.add_face("face00", [1.0] * 8)

    def test_cost_grows_with_gallery(self):
        small = FaceDomain(dimensions=4)
        small.enroll_random(["a", "b"], seed=1)
        big = FaceDomain(dimensions=4)
        big.enroll_random([f"f{i}" for i in range(100)], seed=1)
        small_t = small.execute(GroundCall("faces", "match", ("a", 0.0))).t_all_ms
        big_t = big.execute(GroundCall("faces", "match", ("f0", 0.0))).t_all_ms
        assert big_t > 5 * small_t


class TestFaceInvariants:
    def make_cim(self, faces):
        registry = DomainRegistry([faces])
        return CacheInvariantManager(
            registry,
            SimClock(),
            invariants=[
                parse_invariant(FACE_THRESHOLD_INVARIANT),
                parse_invariant(FACE_FLOOR_INVARIANT),
            ],
        )

    def test_threshold_containment_partial_hit(self, faces):
        cim = self.make_cim(faces)
        cim.lookup(GroundCall("faces", "match", ("face00", 0.8)))
        result = cim.lookup(GroundCall("faces", "match", ("face00", 0.3)))
        assert result.provenance == "invariant-partial"
        assert result.complete

    def test_partial_answers_sound(self, faces):
        cim = self.make_cim(faces)
        cim.lookup(GroundCall("faces", "match", ("face00", 0.8)))
        cim.policy = CimPolicy.PARTIAL_ONLY
        partial = cim.lookup(GroundCall("faces", "match", ("face00", 0.3)))
        truth = faces.execute(GroundCall("faces", "match", ("face00", 0.3)))
        assert set(partial.answers) <= set(truth.answers)

    def test_floor_equality_hit(self, faces):
        cim = self.make_cim(faces)
        cim.lookup(GroundCall("faces", "match", ("face00", -1)))
        result = cim.lookup(GroundCall("faces", "match", ("face00", -5)))
        assert result.provenance == "invariant-eq"
        assert result.cardinality == 20


# ---------------------------------------------------------------------------
# Text
# ---------------------------------------------------------------------------


@pytest.fixture
def corpus() -> TextDomain:
    domain = TextDomain()
    domain.add_documents(sample_newswire())
    return domain


class TestTokenizer:
    def test_lowercase_and_punctuation(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_hyphen_and_apostrophe_kept(self):
        assert tokenize("h-22 fuel isn't") == ["h-22", "fuel", "isn't"]


class TestTextDomain:
    def test_search(self, corpus):
        result = corpus.execute(GroundCall("text", "search", ("video",)))
        assert set(result.answers) == {"d002", "d010"}

    def test_search_case_insensitive(self, corpus):
        upper = corpus.execute(GroundCall("text", "search", ("VIDEO",)))
        lower = corpus.execute(GroundCall("text", "search", ("video",)))
        assert upper.answers == lower.answers

    def test_search_and_intersects(self, corpus):
        result = corpus.execute(GroundCall("text", "search_and", ("video", "rope")))
        assert set(result.answers) == {"d010"}

    def test_search_no_hits(self, corpus):
        result = corpus.execute(GroundCall("text", "search", ("xylophone",)))
        assert result.answers == ()

    def test_headline(self, corpus):
        result = corpus.execute(GroundCall("text", "headline", ("d003",)))
        assert "Hitchcock" in result.answers[0]

    def test_doc_count(self, corpus):
        result = corpus.execute(GroundCall("text", "doc_count", ()))
        assert result.answers == (10,)

    def test_unknown_document(self, corpus):
        with pytest.raises(BadCallError):
            corpus.execute(GroundCall("text", "headline", ("d999",)))

    def test_duplicate_document(self, corpus):
        with pytest.raises(BadCallError):
            corpus.add_document("d001", "dup", "")

    def test_non_string_keyword(self, corpus):
        with pytest.raises(BadCallError):
            corpus.execute(GroundCall("text", "search", (42,)))

    def test_cost_scales_with_postings(self, corpus):
        rare = corpus.execute(GroundCall("text", "search", ("hitchcock",)))
        common = corpus.execute(GroundCall("text", "search", ("the",)))
        assert common.t_all_ms >= rare.t_all_ms


class TestTextInvariants:
    def make_cim(self, corpus):
        registry = DomainRegistry([corpus])
        return CacheInvariantManager(
            registry,
            SimClock(),
            invariants=[
                parse_invariant(TEXT_CONJUNCTION_INVARIANT),
                parse_invariant(TEXT_COMMUTE_INVARIANT),
            ],
        )

    def test_conjunction_partial_hit(self, corpus):
        cim = self.make_cim(corpus)
        cim.lookup(GroundCall("text", "search_and", ("video", "rope")))
        result = cim.lookup(GroundCall("text", "search", ("video",)))
        assert result.provenance == "invariant-partial"
        assert set(result.answers) == {"d010", "d002"}  # cached first, then rest

    def test_commutativity_equality_hit(self, corpus):
        cim = self.make_cim(corpus)
        cim.lookup(GroundCall("text", "search_and", ("rope", "video")))
        result = cim.lookup(GroundCall("text", "search_and", ("video", "rope")))
        assert result.provenance == "invariant-eq"

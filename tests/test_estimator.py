"""Rule cost estimator tests: the paper's §7 formulas against hand-fed
statistics."""

import pytest

from repro.core.estimator import RuleCostEstimator
from repro.core.model import Comparison, GroundCall, make_in
from repro.core.plans import CallStep, CompareStep, Plan
from repro.core.terms import Constant, Variable
from repro.dcsm.module import DCSM
from repro.dcsm.patterns import BOUND, CallPattern
from repro.domains.base import CallResult
from repro.errors import EstimationError

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def feed(dcsm: DCSM, domain: str, function: str, args: tuple,
         card: int, t_all: float, t_first: float = None):
    """Record one synthetic observation."""
    t_first = t_first if t_first is not None else t_all / 2
    call = GroundCall(domain, function, args)
    dcsm.record(
        CallResult(
            call=call,
            answers=tuple(range(card)),
            t_first_ms=t_first,
            t_all_ms=t_all,
        )
    )


@pytest.fixture
def trained_dcsm() -> DCSM:
    dcsm = DCSM()
    # d1:p_bf('a') → card 2, T_all 10 ; d2:q_bf($b) → card 1, T_all 20
    feed(dcsm, "d1", "p_bf", ("a",), card=2, t_all=10.0, t_first=4.0)
    feed(dcsm, "d2", "q_bf", (1,), card=1, t_all=20.0, t_first=8.0)
    feed(dcsm, "d2", "q_ff", (), card=3, t_all=30.0, t_first=5.0)
    feed(dcsm, "d1", "p_bb", ("a", 1), card=1, t_all=6.0, t_first=6.0)
    return dcsm


class TestFormulas:
    def test_single_call(self, trained_dcsm):
        estimator = RuleCostEstimator(trained_dcsm)
        plan = Plan((CallStep(make_in(X, "d1", "p_bf", "a")),), (X,))
        estimate = estimator.estimate(plan)
        assert estimate.t_all_ms == pytest.approx(10.0)
        assert estimate.t_first_ms == pytest.approx(4.0)
        assert estimate.cardinality == pytest.approx(2.0)

    def test_nested_loop_formula(self, trained_dcsm):
        """The paper's formula (1): Ta(p) + Card(p)·Ta(q)."""
        estimator = RuleCostEstimator(trained_dcsm)
        plan = Plan(
            (
                CallStep(make_in(X, "d1", "p_bf", "a")),
                CallStep(make_in(Y, "d2", "q_bf", X)),
            ),
            (X, Y),
        )
        estimate = estimator.estimate(plan)
        # T_all = 10 + 2 × 20 = 50 ; T_first = 4 + 8 = 12 ; Card = 2 × 1
        assert estimate.t_all_ms == pytest.approx(50.0)
        assert estimate.t_first_ms == pytest.approx(12.0)
        assert estimate.cardinality == pytest.approx(2.0)

    def test_membership_output_caps_fanout(self, trained_dcsm):
        estimator = RuleCostEstimator(trained_dcsm)
        # q_ff has card 3, but with a ground output it is a membership test
        plan = Plan(
            (
                CallStep(make_in(Constant((1, "x")), "d2", "q_ff")),
                CallStep(make_in(X, "d1", "p_bf", "a")),
            ),
            (X,),
        )
        estimate = estimator.estimate(plan)
        # fanout of the first call capped at 1 → second call runs once
        assert estimate.t_all_ms == pytest.approx(30.0 + 1 * 10.0)

    def test_membership_cap_disabled(self, trained_dcsm):
        estimator = RuleCostEstimator(trained_dcsm, membership_cap=False)
        plan = Plan(
            (
                CallStep(make_in(Constant((1, "x")), "d2", "q_ff")),
                CallStep(make_in(X, "d1", "p_bf", "a")),
            ),
            (X,),
        )
        estimate = estimator.estimate(plan)
        assert estimate.t_all_ms == pytest.approx(30.0 + 3 * 10.0)

    def test_comparison_selectivity(self, trained_dcsm):
        estimator = RuleCostEstimator(trained_dcsm, comparison_selectivity=0.5)
        plan = Plan(
            (
                CallStep(make_in(X, "d2", "q_ff")),
                CompareStep(Comparison(">", X, Constant(0))),
                CallStep(make_in(Y, "d1", "p_bf", "a")),
            ),
            (X, Y),
        )
        estimate = estimator.estimate(plan)
        # q_ff card 3, filtered to 1.5, then p_bf per remaining answer
        assert estimate.t_all_ms == pytest.approx(30.0 + 1.5 * 10.0)

    def test_binding_assignment_costs_nothing(self, trained_dcsm):
        estimator = RuleCostEstimator(trained_dcsm, comparison_selectivity=0.5)
        plan = Plan(
            (
                CompareStep(Comparison("=", X, Constant("a"))),
                CallStep(make_in(Y, "d1", "p_bf", X)),
            ),
            (Y,),
        )
        estimate = estimator.estimate(plan)
        # the = binds (no selectivity); p_bf($b) averages to the only obs
        assert estimate.t_all_ms == pytest.approx(10.0)
        assert estimate.cardinality == pytest.approx(2.0)


class TestPatterns:
    def test_constant_args_stay_constants(self, trained_dcsm):
        estimator = RuleCostEstimator(trained_dcsm)
        step = CallStep(make_in(X, "d1", "p_bb", "a", Y))
        pattern = estimator.pattern_for(step, frozenset({Y}))
        assert pattern == CallPattern("d1", "p_bb", ("a", BOUND))

    def test_variables_become_bound_markers(self, trained_dcsm):
        estimator = RuleCostEstimator(trained_dcsm)
        step = CallStep(make_in(X, "d2", "q_bf", Y))
        pattern = estimator.pattern_for(step, frozenset({Y}))
        assert pattern.args == (BOUND,)


class TestChoice:
    def test_picks_cheaper_plan_all_answers(self, trained_dcsm):
        estimator = RuleCostEstimator(trained_dcsm)
        cheap = Plan((CallStep(make_in(X, "d1", "p_bf", "a")),), (X,))
        pricey = Plan((CallStep(make_in(X, "d2", "q_ff")),), (X,))
        winner, estimates = estimator.choose([pricey, cheap], objective="all")
        assert winner.plan is cheap
        assert len(estimates) == 2

    def test_objective_first_differs(self, trained_dcsm):
        estimator = RuleCostEstimator(trained_dcsm)
        # q_ff: T_first 5, T_all 30 ; p_bf: T_first 4, T_all 10
        fast_first = Plan((CallStep(make_in(X, "d1", "p_bf", "a")),), (X,))
        slow_first = Plan((CallStep(make_in(X, "d2", "q_ff")),), (X,))
        winner_first, _ = estimator.choose(
            [slow_first, fast_first], objective="first"
        )
        assert winner_first.plan is fast_first

    def test_unpriceable_plan_skipped(self, trained_dcsm):
        estimator = RuleCostEstimator(trained_dcsm)
        unknown = Plan((CallStep(make_in(X, "nowhere", "f")),), (X,))
        known = Plan((CallStep(make_in(X, "d1", "p_bf", "a")),), (X,))
        winner, estimates = estimator.choose([unknown, known])
        assert winner.plan is known
        assert estimates[0] is None

    def test_all_unpriceable_returns_none(self):
        estimator = RuleCostEstimator(DCSM())
        unknown = Plan((CallStep(make_in(X, "nowhere", "f")),), (X,))
        winner, estimates = estimator.choose([unknown])
        assert winner is None

    def test_estimate_error_without_stats(self):
        estimator = RuleCostEstimator(DCSM())
        plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
        with pytest.raises(EstimationError):
            estimator.estimate(plan)

"""Invariant matching tests (paper §4.1 semantics)."""

from repro.cim.cache import ResultCache
from repro.cim.invariants import InvariantIndex, match_invariants
from repro.core.model import GroundCall, INVARIANT_EQ, INVARIANT_SUPSET
from repro.core.parser import parse_invariant


def f2o(first: int, last: int, video: str = "rope") -> GroundCall:
    return GroundCall("video", "frames_to_objects", (video, first, last))


CONTAINMENT = parse_invariant(
    "F1 <= F2 & L2 <= L1 => "
    "video:frames_to_objects(V, F1, L1) >= video:frames_to_objects(V, F2, L2)."
)
CLIP = parse_invariant(
    "Last >= 240 => video:frames_to_objects(V, First, Last) = "
    "video:frames_to_objects(V, First, 240)."
)
SHRINK = parse_invariant(
    "Dist > 142 => spatial:range('points', X, Y, Dist) = "
    "spatial:range('points', X, Y, 142)."
)


class TestIndex:
    def test_indexed_by_left_function(self):
        index = InvariantIndex([CONTAINMENT, SHRINK])
        assert len(index.candidates_for(f2o(1, 2))) == 1
        spatial_call = GroundCall("spatial", "range", ("points", 1.0, 2.0, 999.0))
        assert len(index.candidates_for(spatial_call)) == 1

    def test_iteration(self):
        index = InvariantIndex([CONTAINMENT])
        assert list(index) == [CONTAINMENT]


class TestEqualityMatching:
    def test_shrink_invariant(self):
        cache = ResultCache()
        cached = GroundCall("spatial", "range", ("points", 5.0, 5.0, 142))
        cache.put(cached, ("p1", "p2"))
        index = InvariantIndex([SHRINK])
        request = GroundCall("spatial", "range", ("points", 5.0, 5.0, 500))
        match = match_invariants(index, request, cache)
        assert match is not None
        assert match.is_equality
        assert match.entry.answers == ("p1", "p2")

    def test_condition_blocks_small_radius(self):
        cache = ResultCache()
        cache.put(GroundCall("spatial", "range", ("points", 5.0, 5.0, 142)), ("p1",))
        index = InvariantIndex([SHRINK])
        request = GroundCall("spatial", "range", ("points", 5.0, 5.0, 100))
        assert match_invariants(index, request, cache) is None

    def test_clip_invariant_with_shared_variable(self):
        cache = ResultCache()
        cache.put(f2o(4, 240), ("a", "b"))
        index = InvariantIndex([CLIP])
        match = match_invariants(index, f2o(4, 9999), cache)
        assert match is not None and match.is_equality

    def test_different_video_does_not_match(self):
        cache = ResultCache()
        cache.put(f2o(4, 240, video="vertigo"), ("x",))
        index = InvariantIndex([CLIP])
        assert match_invariants(index, f2o(4, 9999, video="rope"), cache) is None


class TestContainmentMatching:
    def test_narrower_cached_interval_matches(self):
        cache = ResultCache()
        cache.put(f2o(4, 47), ("a", "b", "c"))
        index = InvariantIndex([CONTAINMENT])
        match = match_invariants(index, f2o(4, 127), cache)
        assert match is not None
        assert match.relation == INVARIANT_SUPSET
        assert match.entry.call == f2o(4, 47)

    def test_wider_cached_interval_rejected(self):
        """Serving a superset's answers would be unsound."""
        cache = ResultCache()
        cache.put(f2o(1, 200), ("a", "b", "c", "d"))
        index = InvariantIndex([CONTAINMENT])
        assert match_invariants(index, f2o(4, 47), cache) is None

    def test_largest_partial_preferred(self):
        cache = ResultCache()
        cache.put(f2o(4, 20), ("a",))
        cache.put(f2o(4, 60), ("a", "b", "c"))
        index = InvariantIndex([CONTAINMENT])
        match = match_invariants(index, f2o(4, 127), cache)
        assert match.entry.call == f2o(4, 60)

    def test_equality_beats_containment(self):
        cache = ResultCache()
        cache.put(f2o(4, 60), ("a", "b"))
        cache.put(f2o(4, 240), ("a", "b", "c", "d"))
        index = InvariantIndex([CONTAINMENT, CLIP])
        match = match_invariants(index, f2o(4, 99999), cache)
        assert match.is_equality

    def test_incomplete_entries_ignored(self):
        cache = ResultCache()
        cache.put(f2o(4, 47), ("a",), complete=False)
        index = InvariantIndex([CONTAINMENT])
        assert match_invariants(index, f2o(4, 127), cache) is None

    def test_relations_filter(self):
        cache = ResultCache()
        cache.put(f2o(4, 47), ("a",))
        index = InvariantIndex([CONTAINMENT])
        only_eq = match_invariants(
            index, f2o(4, 127), cache, relations=(INVARIANT_EQ,)
        )
        assert only_eq is None

    def test_empty_cache(self):
        index = InvariantIndex([CONTAINMENT, CLIP])
        assert match_invariants(index, f2o(1, 10), ResultCache()) is None

    def test_identity_interval_matches_itself_via_invariant(self):
        # F1<=F1 & L1<=L1 holds: the cached exact call is also a (trivial)
        # containment candidate — the manager prefers exact hits anyway
        cache = ResultCache()
        cache.put(f2o(4, 47), ("a",))
        index = InvariantIndex([CONTAINMENT])
        match = match_invariants(index, f2o(4, 47), cache)
        assert match is not None

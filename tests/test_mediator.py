"""Mediator integration tests: the full Figure-1 pipeline end to end."""

import pytest

from repro.cim.manager import CimPolicy
from repro.core.mediator import Mediator
from repro.core.model import Query
from repro.core.parser import parse_query
from repro.domains.base import simple_domain
from repro.errors import PlanningError
from repro.workloads.datasets import build_rope_testbed


class TestM1EndToEnd:
    """The paper's M1/Q7 example executed for real."""

    def test_all_answers_correct(self, m1_mediator: Mediator):
        result = m1_mediator.query("?- m(a, C).")
        assert sorted(result.column("C")) == ["x", "y"]
        assert result.complete

    def test_all_plans_agree_on_answers(self, m1_mediator: Mediator):
        baseline = None
        for plan in m1_mediator.plans("?- m(a, C)."):
            result = m1_mediator.query("?- m(a, C).", plan=plan)
            answers = sorted(result.column("C"))
            if baseline is None:
                baseline = answers
            assert answers == baseline

    def test_optimizer_converges_to_best_plan(self, m1_mediator: Mediator):
        query = "?- m(a, C)."
        # train: run every plan once so DCSM has statistics for all calls
        for plan in m1_mediator.plans(query):
            m1_mediator.query(query, plan=plan)
        result = m1_mediator.query(query)
        assert result.chosen_estimate is not None
        # the optimizer's pick must be (near-)optimal among the candidates
        timings = []
        for plan in result.candidate_plans:
            run = m1_mediator.query(query, plan=plan)
            timings.append(run.t_all_ms)
        chosen_index = result.candidate_plans.index(result.chosen)
        assert timings[chosen_index] <= min(timings) * 1.2

    def test_query_object_accepted(self, m1_mediator: Mediator):
        query = parse_query("?- m(a, C).")
        result = m1_mediator.query(query)
        assert isinstance(result.query, Query)
        assert result.cardinality == 2

    def test_statistics_accumulate(self, m1_mediator: Mediator):
        assert m1_mediator.dcsm.observation_count() == 0
        m1_mediator.query("?- m(a, C).")
        assert m1_mediator.dcsm.observation_count() > 0


class TestCimIntegration:
    def test_cim_routing_all(self, m1_mediator: Mediator):
        first = m1_mediator.query("?- m(a, C).", use_cim=True)
        second = m1_mediator.query("?- m(a, C).", use_cim=True)
        assert second.t_all_ms < first.t_all_ms
        assert second.execution.provenance["cache"] > 0

    def test_cim_routing_subset(self, m1_mediator: Mediator):
        m1_mediator.query("?- m(a, C).", use_cim={"d1"})
        result = m1_mediator.query("?- m(a, C).", use_cim={"d1"})
        # d1 calls cached, d2 calls still real
        assert result.execution.provenance["cache"] > 0
        assert result.execution.provenance["domain"] > 0

    def test_invariant_through_mediator(self):
        mediator = build_rope_testbed()
        warm = mediator.query("?- objects(4, 47, O).", use_cim=True)
        wider = mediator.query("?- objects(4, 127, O).", use_cim=True)
        assert wider.execution.provenance["invariant-partial"] == 1
        assert set(warm.column("O")) <= set(wider.column("O"))
        assert wider.cardinality == 24

    def test_partial_only_mode_incomplete(self):
        mediator = build_rope_testbed()
        mediator.cim.policy = CimPolicy.PARTIAL_ONLY
        mediator.query("?- objects(4, 47, O).", use_cim=True)
        partial = mediator.query("?- objects(4, 127, O).", use_cim=True)
        assert not partial.complete
        assert partial.cardinality == 19


class TestModes:
    def test_interactive_stops(self, m1_mediator: Mediator):
        stops = []

        def no_more(batch, total):
            stops.append(total)
            return False

        result = m1_mediator.query(
            "?- m(a, C).",
            mode="interactive",
            batch_size=1,
            continue_callback=no_more,
        )
        assert not result.complete
        assert result.cardinality == 1

    def test_max_answers(self, m1_mediator: Mediator):
        result = m1_mediator.query("?- m(a, C).", max_answers=1)
        assert result.cardinality == 1
        assert not result.complete


class TestResultApi:
    def test_rows_and_column(self, m1_mediator: Mediator):
        result = m1_mediator.query("?- m(a, C).")
        rows = result.rows()
        assert all(set(row) == {"C"} for row in rows)
        assert sorted(result.column("C")) == ["x", "y"]
        with pytest.raises(KeyError):
            result.column("Nope")

    def test_str_contains_timings(self, m1_mediator: Mediator):
        result = m1_mediator.query("?- m(a, C).")
        rendered = str(result)
        assert "T_first" in rendered and "T_all" in rendered

    def test_predicted_vs_actual(self, m1_mediator: Mediator):
        m1_mediator.query("?- m(a, C).")  # train
        result = m1_mediator.query("?- m(a, C).")
        comparison = result.predicted_vs_actual()
        predicted, actual = comparison["t_all_ms"]
        assert actual > 0
        # after training at least one plan is priceable
        assert predicted is None or predicted > 0


class TestRegistration:
    def test_local_registration(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: [1]}))
        mediator.load_program("p(X) :- in(X, d:f()).")
        assert mediator.query("?- p(X).").answers == ((1,),)

    def test_remote_registration_slower(self):
        def build(site):
            mediator = Mediator()
            mediator.register_domain(
                simple_domain("d", {"f": lambda: list(range(20))}), site=site
            )
            mediator.load_program("p(X) :- in(X, d:f()).")
            return mediator.query("?- p(X).").t_all_ms

        assert build("italy") > build("cornell") > build(None)

    def test_train_helper(self, m1_mediator: Mediator):
        count = m1_mediator.train(["?- m(a, C).", "?- m(b, C)."])
        assert count == m1_mediator.dcsm.observation_count()
        assert count > 0

    def test_planning_error_propagates(self):
        mediator = Mediator()
        mediator.load_program("p(X) :- q(X).")
        with pytest.raises(PlanningError):
            mediator.query("?- p(X).")


class TestRopeTestbedFidelity:
    """The workload's cardinalities must match the paper's tables."""

    def test_paper_cardinalities(self):
        mediator = build_rope_testbed()
        assert mediator.query("?- actors(A).").cardinality == 6
        assert mediator.query("?- objects(4, 47, O).").cardinality == 19
        assert mediator.query("?- objects(4, 127, O).").cardinality == 24

    def test_appendix_queries_run(self):
        mediator = build_rope_testbed()
        for text in (
            "?- query1(4, 47, O, S).",
            "?- query2(4, 47, O, F, A).",
            "?- query3(4, 47, O, A).",
            "?- query4(4, 47, O, A).",
        ):
            result = mediator.query(text)
            assert result.cardinality > 0

    def test_query3_and_query4_equivalent(self):
        mediator = build_rope_testbed()
        r3 = mediator.query("?- query3(4, 47, O, A).")
        r4 = mediator.query("?- query4(4, 47, O, A).")
        assert sorted(r3.answers) == sorted(r4.answers)

"""Edge-case and small-API tests across modules (branches the big suites
don't reach)."""

from repro.core.answers import QueryResult
from repro.core.mediator import Mediator
from repro.core.model import Predicate, Program, Query, Rule
from repro.core.parser import parse_program, parse_rule
from repro.core.terms import Constant, Variable
from repro.domains.base import Domain, simple_domain
from repro.domains.registry import DomainRegistry
from repro.net.sites import custom_site, make_site


class TestMediatorApiVariants:
    def test_load_program_object(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: [1]}))
        program = parse_program("p(X) :- in(X, d:f()).")
        mediator.load_program(program)
        assert mediator.query("?- p(X).").answers == ((1,),)

    def test_add_rule_object(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: [2]}))
        mediator.add_rule(parse_rule("p(X) :- in(X, d:f())."))
        assert mediator.query("?- p(X).").answers == ((2,),)

    def test_add_multiple_rules_in_one_string(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: [1]}))
        mediator.add_rule("p(X) :- in(X, d:f()).  q(X) :- p(X).")
        assert mediator.query("?- q(X).").cardinality == 1

    def test_register_with_site_object(self):
        mediator = Mediator()
        site = custom_site("lab", 5, 5, 500)
        mediator.register_domain(simple_domain("d", {"f": lambda: [1]}), site=site)
        result = mediator.query("?- in(X, d:f()).")  # needs a program? direct query
        assert result.answers == ((1,),)

    def test_direct_source_query_without_rules(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: [5, 6]}))
        result = mediator.query("?- in(X, d:f()) & X > 5.")
        assert result.answers == ((6,),)

    def test_rewriter_cache_invalidated_on_new_rules(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: [1]}))
        mediator.load_program("p(X) :- in(X, d:f()).")
        __ = mediator.rewriter  # build the cached rewriter
        mediator.add_rule("q(X) :- p(X).")
        assert mediator.query("?- q(X).").cardinality == 1


class TestQueryResultApi:
    def make_result(self) -> QueryResult:
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: [1, 2]}))
        mediator.load_program("p(X) :- in(X, d:f()).")
        return mediator.query("?- p(X).")

    def test_first(self):
        result = self.make_result()
        assert result.first() == (1,)

    def test_first_empty(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: []}))
        mediator.load_program("p(X) :- in(X, d:f()).")
        result = mediator.query("?- p(X).")
        assert result.first() is None
        assert result.t_first_ms is None
        assert "T_first=n/a" in str(result)

    def test_variables(self):
        assert self.make_result().variables == ("X",)

    def test_predicted_without_estimate(self):
        result = self.make_result()
        if result.chosen_estimate is None:
            predicted, actual = result.predicted_vs_actual()["t_all_ms"]
            assert predicted is None and actual > 0


class TestDomainRegistry:
    def test_len_and_iter(self):
        registry = DomainRegistry(
            [simple_domain("a", {}), simple_domain("b", {})]
        )
        assert len(registry) == 2
        assert {endpoint.name for endpoint in registry} == {"a", "b"}

    def test_contains(self):
        registry = DomainRegistry([simple_domain("a", {})])
        assert "a" in registry
        assert "z" not in registry


class TestDomainBase:
    def test_register_infers_arity(self):
        domain = Domain("d")
        fn = domain.register("two", lambda x, y: [x + y])
        assert fn.arity == 2

    def test_default_cost_zero_answers(self):
        domain = Domain("d", base_cost_ms=2.0, per_answer_cost_ms=0.5)
        t_first, t_all = domain.default_cost(0)
        assert t_first == 2.0 and t_all == 2.0

    def test_calls_made_counter(self):
        domain = simple_domain("d", {"f": lambda: [1]})
        from repro.core.model import GroundCall

        domain.execute(GroundCall("d", "f", ()))
        domain.execute(GroundCall("d", "f", ()))
        assert domain.calls_made == 2

    def test_repr(self):
        domain = simple_domain("d", {"f": lambda: []})
        assert "d" in repr(domain) and "f" in repr(domain)


class TestProgramApi:
    def test_str_renders_all_rules(self):
        program = parse_program("p(X) :- in(X, d:f()).\nq(a).")
        text = str(program)
        assert "p(X)" in text and "q('a')" in text

    def test_iteration(self):
        program = parse_program("p(a).\np(b).")
        assert len(list(program)) == 2

    def test_manual_construction(self):
        program = Program([Rule(Predicate("p", (Constant(1),)), ())])
        assert program.defines("p", 1)


class TestSites:
    def test_seed_changes_jitter_stream(self):
        a = make_site("italy", seed=1)
        b = make_site("italy", seed=2)
        values_a = [a.latency.setup_ms() for __ in range(5)]
        values_b = [b.latency.setup_ms() for __ in range(5)]
        assert values_a != values_b


class TestExplainEdgeCases:
    def test_explain_plan_without_calls(self):
        from repro.core.explain import explain

        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: [1]}))
        mediator.load_program("p(X) :- in(X, d:f()).")
        report = explain(mediator, "?- p(X).")
        assert "Plan 1" in report

    def test_cursor_from_explicit_plan(self):
        mediator = Mediator(init_overhead_ms=0.0, display_cost_ms=0.0)
        mediator.register_domain(simple_domain("d", {"f": lambda: [1, 2, 3]}))
        mediator.load_program("p(X) :- in(X, d:f()).")
        plan = mediator.plans("?- p(X).")[0]
        cursor = mediator.cursor("?- p(X).", plan=plan)
        assert cursor.plan is plan
        assert len(cursor.fetch_all()) == 3


class TestQueryObjectConstruction:
    def test_explicit_answer_vars_projection(self):
        mediator = Mediator()
        mediator.register_domain(
            simple_domain("d", {"f": lambda: [(1, "x"), (2, "y")]})
        )
        mediator.load_program(
            "p(A, B) :- in(T, d:f()) & =(T.1, A) & =(T.2, B)."
        )
        from repro.core.parser import parse_query

        base = parse_query("?- p(A, B).")
        projected = Query(goals=base.goals, answer_vars=(Variable("B"),))
        result = mediator.query(projected)
        assert sorted(result.answers) == [("x",), ("y",)]


class TestNegativeCaching:
    """Empty answer sets are answers too: the CIM must cache and serve
    them (saving the repeat call that would find nothing again)."""

    def test_empty_result_cached(self):
        from repro.cim.manager import CacheInvariantManager
        from repro.core.model import GroundCall
        from repro.net.clock import SimClock

        calls = {"n": 0}

        def empty():
            calls["n"] += 1
            return ([], 40.0, 40.0)

        domain = simple_domain("d", {"nothing": empty})
        cim = CacheInvariantManager(DomainRegistry([domain]), SimClock())
        first = cim.lookup(GroundCall("d", "nothing", ()))
        second = cim.lookup(GroundCall("d", "nothing", ()))
        assert first.answers == () == second.answers
        assert calls["n"] == 1
        assert second.provenance == "cache"
        assert second.t_all_ms < 1.0


class TestDcsmDescribe:
    def test_describe_lists_functions_and_tables(self):
        from repro.core.model import GroundCall
        from repro.dcsm.module import DCSM
        from repro.domains.base import CallResult

        dcsm = DCSM(external_estimators={"x": lambda p: None})
        dcsm.record(
            CallResult(
                call=GroundCall("d", "f", (1,)),
                answers=(1,),
                t_first_ms=1.0,
                t_all_ms=2.0,
            )
        )
        text = dcsm.describe()
        assert "d:f: 1 obs" in text
        assert "SummaryTable" in text
        assert "external estimators: x" in text


class TestCliValidate:
    def test_validate_clean_and_broken(self):
        import io

        from repro.cli import MediatorShell

        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: [1]}))
        mediator.load_program("p(X) :- in(X, d:f()).")
        shell = MediatorShell(mediator, stdin=io.StringIO(), stdout=io.StringIO())
        shell.handle(":validate")
        assert "program OK" in shell.stdout.getvalue()
        shell.handle("bad(X) :- in(X, ghost:f()).")
        shell.handle(":validate")
        assert "ghost" in shell.stdout.getvalue()


class TestExecutionTrace:
    def test_trace_records_every_call(self):
        mediator = Mediator(init_overhead_ms=0.0, display_cost_ms=0.0)
        mediator.register_domain(
            simple_domain("d", {"f": lambda: [1, 2], "g": lambda x: [x * 2]})
        )
        mediator.load_program("p(X, Y) :- in(X, d:f()) & in(Y, d:g(X)).")
        result = mediator.query("?- p(X, Y).", trace=True)
        assert len(result.execution.trace) == 3  # one f + two g calls
        first = result.execution.trace[0]
        assert first.call.function == "f"
        assert first.cardinality == 2
        assert "d:f()" in str(first)
        # events carry monotonically non-decreasing timestamps
        at = [event.at_ms for event in result.execution.trace]
        assert at == sorted(at)

    def test_trace_off_by_default(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: [1]}))
        mediator.load_program("p(X) :- in(X, d:f()).")
        result = mediator.query("?- p(X).")
        assert result.execution.trace == ()

    def test_trace_includes_cache_provenance(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"f": lambda: [1]}))
        mediator.load_program("p(X) :- in(X, d:f()).")
        mediator.query("?- p(X).", use_cim=True)
        result = mediator.query("?- p(X).", use_cim=True, trace=True)
        assert result.execution.trace[0].provenance == "cache"

"""Metrics registry tests: counters, histograms, snapshot, render."""

import pytest

from repro.errors import ReproError
from repro.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        assert counter.inc() == 1.0
        assert counter.inc(2.5) == 3.5
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ReproError):
            Counter("c").inc(-1)


class TestHistogram:
    def test_moments(self):
        hist = Histogram("h")
        for value in (10, 20, 30):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 60
        assert hist.mean == pytest.approx(20.0)
        assert hist.min == 10
        assert hist.max == 30

    def test_percentile_nearest_rank(self):
        hist = Histogram("h")
        for value in range(1, 101):
            hist.observe(value)
        assert hist.percentile(0) == 1
        assert hist.percentile(50) == pytest.approx(50, abs=1)
        assert hist.percentile(100) == 100

    def test_percentile_empty_and_bounds(self):
        hist = Histogram("h")
        assert hist.percentile(50) is None
        hist.observe(1)
        with pytest.raises(ReproError):
            hist.percentile(101)

    def test_mean_empty(self):
        assert Histogram("h").mean is None


class TestRegistry:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        registry.inc("net.calls")
        registry.inc("net.calls", 2)
        assert registry.value("net.calls") == 3.0
        assert registry.value("never.touched") == 0.0

    def test_counter_histogram_name_collision(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ReproError):
            registry.observe("x", 1.0)
        registry.observe("y", 1.0)
        with pytest.raises(ReproError):
            registry.inc("y")

    def test_prefix_iteration_sorted(self):
        registry = MetricsRegistry()
        registry.inc("net.calls")
        registry.inc("net.attempts")
        registry.inc("cim.calls")
        names = [c.name for c in registry.counters("net.")]
        assert names == ["net.attempts", "net.calls"]

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("a", 2)
        registry.observe("b", 10)
        registry.observe("b", 20)
        snap = registry.snapshot()
        assert snap["a"] == 2.0
        assert snap["b.count"] == 2.0
        assert snap["b.sum"] == 30.0
        assert snap["b.mean"] == pytest.approx(15.0)

    def test_render_and_reset(self):
        registry = MetricsRegistry()
        assert registry.render() == "(no metrics recorded)"
        registry.inc("a")
        registry.observe("b", 1.5)
        report = registry.render()
        assert "a" in report and "n=1" in report
        assert len(registry) == 2
        registry.reset()
        assert len(registry) == 0


class TestThreadSafety:
    """Regression: counters and histograms are hammered from the parallel
    runtime's worker threads; unsynchronized += would drop increments."""

    def test_counter_hammer_exact_total(self):
        import threading

        registry = MetricsRegistry()
        threads_n, incs = 8, 5_000

        def hammer():
            for _ in range(incs):
                registry.inc("hammered")

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.value("hammered") == float(threads_n * incs)

    def test_histogram_hammer_exact_count(self):
        import threading

        registry = MetricsRegistry()
        threads_n, obs = 8, 2_000

        def hammer(base):
            for i in range(obs):
                registry.observe("hist", base + i)

        threads = [
            threading.Thread(target=hammer, args=(t * obs,))
            for t in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        hist = registry.histogram("hist")
        assert hist.count == threads_n * obs
        assert hist.total == float(sum(range(threads_n * obs)))

    def test_concurrent_registration_single_instance(self):
        import threading

        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def register():
            barrier.wait()
            seen.append(registry.counter("contested"))

        threads = [threading.Thread(target=register) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(counter is seen[0] for counter in seen)

"""Persistence round-trip tests: serialization, DCSM statistics, CIM cache."""

import json

import pytest

from repro.cim.cache import ResultCache
from repro.cim.persistence import load_cache, save_cache
from repro.core.model import GroundCall
from repro.core.terms import Row
from repro.dcsm.module import DCSM
from repro.dcsm.patterns import BOUND, CallPattern
from repro.dcsm.persistence import load_statistics, save_statistics
from repro.domains.base import CallResult
from repro.errors import ReproError
from repro.serialization import (
    decode_call,
    decode_value,
    encode_call,
    encode_value,
)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, -7, 3.25, "", "héllo", ("a", 1), (("x",), 2.5)],
    )
    def test_scalar_and_tuple_round_trip(self, value):
        assert decode_value(json.loads(json.dumps(encode_value(value)))) == value

    def test_row_round_trip(self):
        row = Row([("name", "stewart"), ("frames", (4, 47))])
        encoded = json.loads(json.dumps(encode_value(row)))
        assert decode_value(encoded) == row

    def test_nested_row_in_tuple(self):
        value = (Row([("a", 1)]), "x")
        assert decode_value(encode_value(value)) == value

    def test_unserializable_rejected(self):
        with pytest.raises(ReproError):
            encode_value(object())

    def test_undecodable_rejected(self):
        with pytest.raises(ReproError):
            decode_value({"weird": 1})

    def test_call_round_trip(self):
        call = GroundCall("video", "frames_to_objects", ("rope", 4, 47))
        assert decode_call(encode_call(call)) == call

    def test_malformed_call_rejected(self):
        with pytest.raises(ReproError):
            decode_call({"domain": "d"})


class TestDcsmPersistence:
    def make_trained(self) -> DCSM:
        dcsm = DCSM()
        for arg, card, t_all in [("a", 2, 2.0), ("a", 2, 2.2), ("b", 3, 2.8)]:
            dcsm.record(
                CallResult(
                    call=GroundCall("d1", "p_bf", (arg,)),
                    answers=tuple(range(card)),
                    t_first_ms=t_all / 2,
                    t_all_ms=t_all,
                )
            )
        return dcsm

    def test_round_trip_preserves_estimates(self, tmp_path):
        original = self.make_trained()
        path = tmp_path / "stats.json"
        assert save_statistics(original, path) == 3

        restored = DCSM()
        assert load_statistics(restored, path) == 3
        pattern = CallPattern("d1", "p_bf", ("a",))
        assert restored.cost(pattern).t_all_ms == pytest.approx(
            original.cost(pattern).t_all_ms
        )
        pattern = CallPattern("d1", "p_bf", (BOUND,))
        assert restored.cost(pattern).cardinality == pytest.approx(
            original.cost(pattern).cardinality
        )

    def test_load_appends(self, tmp_path):
        original = self.make_trained()
        path = tmp_path / "stats.json"
        save_statistics(original, path)
        load_statistics(original, path)  # duplicate the log
        assert original.observation_count() == 6

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "observations": []}))
        with pytest.raises(ReproError):
            load_statistics(DCSM(), path)


class TestCachePersistence:
    def test_round_trip(self, tmp_path):
        cache = ResultCache()
        call = GroundCall("video", "frames_to_objects", ("rope", 4, 47))
        cache.put(call, ("brandon", "phillip"), now_ms=10.0)
        cache.put(
            GroundCall("d", "partial", (1,)), ("x",), now_ms=20.0, complete=False
        )
        path = tmp_path / "cache.json"
        assert save_cache(cache, path) == 2

        restored = ResultCache()
        assert load_cache(restored, path) == 2
        entry = restored.get(call)
        assert entry.answers == ("brandon", "phillip")
        assert entry.stored_at_ms == 10.0
        partial = restored.peek(GroundCall("d", "partial", (1,)))
        assert not partial.complete

    def test_load_respects_capacity(self, tmp_path):
        cache = ResultCache()
        for i in range(10):
            cache.put(GroundCall("d", "f", (i,)), (i,))
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        small = ResultCache(max_entries=3)
        load_cache(small, path)
        assert len(small) == 3

    def test_ttl_expiry_after_load(self, tmp_path):
        cache = ResultCache()
        cache.put(GroundCall("d", "f", (1,)), (1,), now_ms=0.0)
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        ttl_cache = ResultCache(ttl_ms=100)
        load_cache(ttl_cache, path)
        assert ttl_cache.get(GroundCall("d", "f", (1,)), now_ms=500.0) is None

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 0, "entries": []}))
        with pytest.raises(ReproError):
            load_cache(ResultCache(), path)

    def test_rows_survive(self, tmp_path):
        cache = ResultCache()
        row = Row([("first", 4), ("last", 47)])
        call = GroundCall("video", "object_to_frames", ("rope", "brandon"))
        cache.put(call, (row,))
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        restored = ResultCache()
        load_cache(restored, path)
        assert restored.get(call).answers[0].last == 47

"""Parser and lexer tests: the full grammar plus error reporting."""

import pytest

from repro.core.terms import Constant
from repro.core.model import (
    Comparison,
    InAtom,
    INVARIANT_EQ,
    INVARIANT_SUPSET,
    Predicate,
)
from repro.core.parser import (
    _tokenize_for_tests,
    parse_invariant,
    parse_invariants,
    parse_literal,
    parse_program,
    parse_query,
    parse_rule,
    parse_term,
)
from repro.core.terms import AttrPath, Variable
from repro.errors import InvariantError, ParseError


class TestLexer:
    def test_basic_tokens(self):
        kinds = _tokenize_for_tests("p(X, 'lit', 4)")
        assert kinds == [
            ("ident", "p"),
            ("punct", "("),
            ("var", "X"),
            ("punct", ","),
            ("string", "'lit'"),
            ("punct", ","),
            ("number", "4"),
            ("punct", ")"),
        ]

    def test_comments_skipped(self):
        assert _tokenize_for_tests("% comment\np(a).") == _tokenize_for_tests("p(a).")
        assert _tokenize_for_tests("// c\np(a).") == _tokenize_for_tests("p(a).")
        assert _tokenize_for_tests("# c\np(a).") == _tokenize_for_tests("p(a).")

    def test_dollar_variable_strips_marker(self):
        tokens = _tokenize_for_tests("$Ans")
        assert tokens == [("var", "Ans")]

    def test_attr_path_token(self):
        tokens = _tokenize_for_tests("T.loc")
        assert tokens[0] == ("var", "T")

    def test_float_vs_clause_dot(self):
        tokens = _tokenize_for_tests("f(4.5).")
        assert ("number", "4.5") in tokens
        assert tokens[-1] == ("punct", ".")

    def test_negative_number_in_args(self):
        term = parse_term("-3")
        assert term == Constant(-3)

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            _tokenize_for_tests("p('oops)")

    def test_double_quoted_string(self):
        assert parse_term('"hello world"') == Constant("hello world")

    def test_escaped_quote(self):
        assert parse_term(r"'don\'t'") == Constant("don't")


class TestTerms:
    def test_lower_ident_is_symbolic_constant(self):
        assert parse_term("abc") == Constant("abc")

    def test_upper_is_variable(self):
        assert parse_term("Abc") == Variable("Abc")

    def test_underscore_is_variable(self):
        assert parse_term("_x") == Variable("_x")

    def test_booleans(self):
        assert parse_term("true") == Constant(True)
        assert parse_term("false") == Constant(False)

    def test_attr_path_named(self):
        term = parse_term("T.name")
        assert term == AttrPath(Variable("T"), ("name",))

    def test_attr_path_positional(self):
        term = parse_term("$Ans.2")
        assert term == AttrPath(Variable("Ans"), (2,))

    def test_attr_path_chain(self):
        term = parse_term("X.address.city")
        assert term == AttrPath(Variable("X"), ("address", "city"))


class TestLiterals:
    def test_in_atom(self):
        literal = parse_literal("in(X, d:f(a, 4))")
        assert isinstance(literal, InAtom)
        assert literal.call.domain == "d"
        assert literal.call.function == "f"
        assert literal.call.args == (Constant("a"), Constant(4))

    def test_prefix_comparison(self):
        literal = parse_literal("=(T.name, A)")
        assert isinstance(literal, Comparison)
        assert literal.op == "="

    def test_infix_comparison(self):
        literal = parse_literal("X >= 4")
        assert literal == Comparison(">=", Variable("X"), Constant(4))

    def test_all_infix_ops(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            literal = parse_literal(f"X {op} Y")
            assert isinstance(literal, Comparison)
            assert literal.op == op

    def test_idb_predicate(self):
        literal = parse_literal("p(X, a)")
        assert isinstance(literal, Predicate)
        assert literal.name == "p"

    def test_nullary_predicate_call(self):
        literal = parse_literal("in(X, d:f())")
        assert isinstance(literal, InAtom)
        assert literal.call.args == ()

    def test_bare_term_without_op_fails(self):
        with pytest.raises(ParseError):
            parse_literal("X")


class TestRulesAndPrograms:
    def test_simple_rule(self):
        rule = parse_rule("p(X) :- in(X, d:f()).")
        assert rule.head == Predicate("p", (Variable("X"),))
        assert len(rule.body) == 1

    def test_fact(self):
        rule = parse_rule("p(a).")
        assert rule.body == ()

    def test_arrow_synonym(self):
        rule = parse_rule("p(X) <- in(X, d:f()).")
        assert len(rule.body) == 1

    def test_mixed_separators(self):
        rule = parse_rule("p(X) :- in(X, d:f()), X > 2 & X < 9.")
        assert len(rule.body) == 3

    def test_program_indexing(self):
        program = parse_program("p(X) :- in(X, d:f()).\np(X) :- in(X, d:g()).\nq(a).")
        assert len(program) == 3
        assert len(program.rules_for("p", 1)) == 2
        assert program.defines("q", 1)
        assert not program.defines("r", 1)

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) :- in(X, d:f())")

    def test_parse_error_carries_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("p(X) :- in(X d:f()).")
        assert "line 1" in str(excinfo.value)


class TestQueries:
    def test_query_with_marker(self):
        query = parse_query("?- m(a, C).")
        assert len(query.goals) == 1
        assert query.answer_vars == (Variable("C"),)

    def test_query_without_marker(self):
        query = parse_query("m(a, C)")
        assert len(query.goals) == 1

    def test_conjunctive_query(self):
        query = parse_query("?- p(X, Y) & q(Y, Z).")
        assert len(query.goals) == 2
        assert query.answer_vars == (Variable("X"), Variable("Y"), Variable("Z"))

    def test_query_with_domain_call(self):
        query = parse_query("?- in(X, d:f(1)) & X > 2.")
        assert len(query.goals) == 2


class TestInvariants:
    def test_equality_invariant(self):
        inv = parse_invariant(
            "Dist > 142 => spatial:range('map1', X, Y, Dist) = "
            "spatial:range('points', X, Y, 142)."
        )
        assert inv.relation == INVARIANT_EQ
        assert len(inv.condition) == 1

    def test_containment_invariant(self):
        inv = parse_invariant(
            "V1 <= V2 => relation:select_lt(T, A, V2) >= relation:select_lt(T, A, V1)."
        )
        assert inv.relation == INVARIANT_SUPSET

    def test_subset_normalised_by_swapping(self):
        inv = parse_invariant(
            "V1 <= V2 => relation:select_lt(T, A, V1) <= relation:select_lt(T, A, V2)."
        )
        assert inv.relation == INVARIANT_SUPSET
        # the ⊇ side must now be the V2 call
        assert str(inv.left.args[2]) == "V2"

    def test_unconditional_invariant(self):
        inv = parse_invariant("d:f(X) = d:g(X).")
        assert inv.condition == ()

    def test_true_keyword_condition(self):
        inv = parse_invariant("true => d:f(X) = d:g(X).")
        assert inv.condition == ()

    def test_unsafe_invariant_rejected(self):
        with pytest.raises(InvariantError):
            parse_invariant("Z > 1 => d:f(X) = d:g(X).")

    def test_multiple_invariants(self):
        invariants = parse_invariants(
            "d:f(X) = d:g(X).\nA <= B => d:h(B) >= d:h(A)."
        )
        assert len(invariants) == 2

    def test_missing_relation(self):
        with pytest.raises(ParseError):
            parse_invariant("d:f(X) d:g(X).")


class TestRoundTrip:
    def test_rule_str_reparses(self):
        source = "p(A, B) :- in(Ans, d1:p_ff()) & Ans.1 = A & Ans.2 = B."
        rule = parse_rule(source)
        again = parse_rule(str(rule))
        assert again == rule

    def test_invariant_str_reparses(self):
        inv = parse_invariant(
            "F1 <= F2 => video:frames_to_objects(V, F1, L) >= "
            "video:frames_to_objects(V, F2, L)."
        )
        again = parse_invariant(str(inv))
        assert again == inv

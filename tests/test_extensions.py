"""Tests for the paper-motivated extensions: per-domain caches, union
query semantics, and predicate-level first-answer statistics (§8)."""

import pytest

from repro.cim.cache import ResultCache
from repro.cim.manager import CacheInvariantManager
from repro.core.mediator import Mediator
from repro.core.model import GroundCall
from repro.core.parser import parse_invariant
from repro.domains.base import simple_domain
from repro.domains.registry import DomainRegistry
from repro.net.clock import SimClock


# ---------------------------------------------------------------------------
# Per-domain caches (paper §4.1)
# ---------------------------------------------------------------------------


class TestPerDomainCaches:
    def make(self):
        fast = simple_domain("fast", {"f": lambda x: [x]})
        slow = simple_domain("slow", {"g": lambda x: [x, x + 1]})
        registry = DomainRegistry([fast, slow])
        slow_cache = ResultCache(max_entries=2)
        cim = CacheInvariantManager(
            registry, SimClock(), domain_caches={"slow": slow_cache}
        )
        return cim, slow_cache

    def test_domains_use_their_own_caches(self):
        cim, slow_cache = self.make()
        cim.lookup(GroundCall("fast", "f", (1,)))
        cim.lookup(GroundCall("slow", "g", (1,)))
        assert len(cim.cache) == 1  # only the fast call
        assert len(slow_cache) == 1

    def test_per_domain_capacity_is_isolated(self):
        cim, slow_cache = self.make()
        for i in range(5):
            cim.lookup(GroundCall("slow", "g", (i,)))
            cim.lookup(GroundCall("fast", "f", (i,)))
        assert len(slow_cache) == 2  # its own bound
        assert len(cim.cache) == 5  # default cache unbounded

    def test_exact_hits_route_correctly(self):
        cim, __ = self.make()
        cim.lookup(GroundCall("slow", "g", (7,)))
        result = cim.lookup(GroundCall("slow", "g", (7,)))
        assert result.provenance == "cache"

    def test_invariants_scan_the_right_cache(self):
        span_domain = simple_domain(
            "slow", {"span": lambda a, b: list(range(a, b + 1))}
        )
        registry = DomainRegistry([span_domain])
        invariant = parse_invariant(
            "A1 <= A2 & B2 <= B1 => slow:span(A1, B1) >= slow:span(A2, B2)."
        )
        slow_cache = ResultCache()
        cim = CacheInvariantManager(
            registry,
            SimClock(),
            invariants=[invariant],
            domain_caches={"slow": slow_cache},
        )
        cim.lookup(GroundCall("slow", "span", (1, 3)))
        result = cim.lookup(GroundCall("slow", "span", (1, 5)))
        assert result.provenance == "invariant-partial"
        assert set(result.answers) == {1, 2, 3, 4, 5}

    def test_set_domain_cache_later(self):
        cim, __ = self.make()
        special = ResultCache()
        cim.set_domain_cache("fast", special)
        cim.lookup(GroundCall("fast", "f", (9,)))
        assert len(special) == 1


# ---------------------------------------------------------------------------
# Union semantics
# ---------------------------------------------------------------------------


class TestUnionSemantics:
    def make_mediator(self) -> Mediator:
        mediator = Mediator()
        mediator.register_domain(
            simple_domain("d", {"f1": lambda: [1, 2], "f2": lambda: [2, 3]})
        )
        mediator.load_program(
            "p(X) :- in(X, d:f1()).\np(X) :- in(X, d:f2())."
        )
        return mediator

    def test_union_concatenates_branches(self):
        mediator = self.make_mediator()
        result = mediator.query("?- p(X).", semantics="union")
        assert sorted(result.column("X")) == [1, 2, 2, 3]

    def test_union_deduplicates_on_request(self):
        mediator = self.make_mediator()
        result = mediator.query("?- p(X).", semantics="union", deduplicate=True)
        assert sorted(result.column("X")) == [1, 2, 3]

    def test_access_path_semantics_runs_one_branch(self):
        mediator = self.make_mediator()
        result = mediator.query("?- p(X).")
        assert len(result.answers) == 2

    def test_union_max_answers(self):
        mediator = self.make_mediator()
        result = mediator.query("?- p(X).", semantics="union", max_answers=3)
        assert result.cardinality == 3
        assert not result.complete

    def test_union_timing_accumulates(self):
        mediator = self.make_mediator()
        single = mediator.query("?- p(X).")
        union = mediator.query("?- p(X).", semantics="union")
        assert union.t_all_ms > single.t_all_ms
        assert union.t_first_ms is not None
        assert union.t_first_ms < union.t_all_ms

    def test_union_through_joins(self):
        mediator = Mediator()
        mediator.register_domain(
            simple_domain(
                "d",
                {
                    "f1": lambda: [1],
                    "f2": lambda: [2],
                    "g": lambda x: [x * 10],
                },
            )
        )
        mediator.load_program(
            """
            base(X) :- in(X, d:f1()).
            base(X) :- in(X, d:f2()).
            top(Y) :- base(X) & in(Y, d:g(X)).
            """
        )
        result = mediator.query("?- top(Y).", semantics="union")
        assert sorted(result.column("Y")) == [10, 20]

    def test_bad_semantics_rejected(self):
        mediator = self.make_mediator()
        from repro.errors import PlanningError

        with pytest.raises(PlanningError):
            mediator.query("?- p(X).", semantics="quantum")


# ---------------------------------------------------------------------------
# Predicate-level first-answer statistics (paper §8 remedy)
# ---------------------------------------------------------------------------


def backtracking_mediator(use_stats: bool) -> Mediator:
    """A query whose first answer needs lots of backtracking: the outer
    call yields many values, only the last of which joins."""
    outer = [f"dead{i}" for i in range(9)] + ["live"]
    mediator = Mediator(use_predicate_first_stats=use_stats)
    mediator.register_domain(
        simple_domain(
            "d",
            {
                "outer": lambda: (list(outer), 1.0, 2.0),
                "inner": lambda o: ([1] if o == "live" else [], 50.0, 50.0),
            },
        )
    )
    mediator.load_program("q(X, Y) :- in(X, d:outer()) & in(Y, d:inner(X)).")
    return mediator


class TestPredicateFirstStats:
    def test_formula_underpredicts_backtracking(self):
        mediator = backtracking_mediator(use_stats=False)
        mediator.query("?- q(X, Y).")  # train DCSM
        result = mediator.query("?- q(X, Y).")
        predicted, actual = result.predicted_vs_actual()["t_first_ms"]
        # the paper's Σ T_first formula misses the 9 dead inner calls
        assert predicted < actual / 3

    def test_history_floor_fixes_it(self):
        mediator = backtracking_mediator(use_stats=True)
        mediator.query("?- q(X, Y).")  # trains both DCSM and history
        result = mediator.query("?- q(X, Y).")
        predicted, actual = result.predicted_vs_actual()["t_first_ms"]
        assert predicted == pytest.approx(actual, rel=0.25)

    def test_disabled_by_default(self):
        mediator = backtracking_mediator(use_stats=False)
        mediator.query("?- q(X, Y).")
        assert mediator.dcsm.predicate_first_estimate("q", 2) is None

    def test_history_never_lowers_prediction(self):
        mediator = backtracking_mediator(use_stats=True)
        mediator.query("?- q(X, Y).")
        # fake a tiny historical value: floor must not reduce the formula
        mediator.dcsm._predicate_t_first[("q", 2)] = [0.001]
        result = mediator.query("?- q(X, Y).")
        predicted, __ = result.predicted_vs_actual()["t_first_ms"]
        assert predicted > 0.001

    def test_conjunctive_queries_not_recorded(self):
        mediator = backtracking_mediator(use_stats=True)
        mediator.query("?- in(X, d:outer()) & X = live.")
        assert mediator.dcsm.predicate_first_estimate("q", 2) is None


# ---------------------------------------------------------------------------
# Source-change invalidation
# ---------------------------------------------------------------------------


class TestSourceInvalidation:
    def make(self):
        state = {"rows": [1, 2, 3]}
        mediator = Mediator()
        mediator.register_domain(
            simple_domain(
                "d",
                {
                    "f": lambda: list(state["rows"]),
                    "g": lambda: ["other"],
                },
            )
        )
        mediator.load_program(
            "p(X) :- in(X, d:f()).\nq(X) :- in(X, d:g())."
        )
        return mediator, state

    def test_stale_answers_served_until_notified(self):
        mediator, state = self.make()
        mediator.query("?- p(X).", use_cim=True)
        state["rows"].append(4)
        stale = mediator.query("?- p(X).", use_cim=True)
        assert stale.cardinality == 3  # the cache hides the update

    def test_notify_function_drops_only_that_function(self):
        mediator, state = self.make()
        mediator.query("?- p(X).", use_cim=True)
        mediator.query("?- q(X).", use_cim=True)
        state["rows"].append(4)
        dropped = mediator.notify_source_changed("d", "f")
        assert dropped == 1
        fresh = mediator.query("?- p(X).", use_cim=True)
        assert fresh.cardinality == 4
        # q is still a cache hit
        other = mediator.query("?- q(X).", use_cim=True)
        assert other.execution.provenance["cache"] == 1

    def test_notify_whole_domain(self):
        mediator, state = self.make()
        mediator.query("?- p(X).", use_cim=True)
        mediator.query("?- q(X).", use_cim=True)
        dropped = mediator.notify_source_changed("d")
        assert dropped == 2
        assert len(mediator.cim.cache) == 0

    def test_notify_unknown_function_is_noop(self):
        mediator, __ = self.make()
        assert mediator.notify_source_changed("d", "nothing") == 0

    def test_statistics_survive_invalidation(self):
        mediator, __ = self.make()
        mediator.query("?- p(X).", use_cim=True)
        before = mediator.dcsm.observation_count()
        mediator.notify_source_changed("d")
        assert mediator.dcsm.observation_count() == before


# ---------------------------------------------------------------------------
# Simulated-time budgets
# ---------------------------------------------------------------------------


class TestTimeBudget:
    def make(self) -> Mediator:
        mediator = Mediator(init_overhead_ms=0.0, display_cost_ms=0.0)
        mediator.register_domain(
            simple_domain("d", {"f": lambda: (list(range(100)), 10.0, 2000.0)})
        )
        mediator.load_program("p(X) :- in(X, d:f()).")
        return mediator

    def test_budget_stops_execution(self):
        mediator = self.make()
        result = mediator.query("?- p(X).", max_time_ms=100.0)
        assert not result.complete
        assert 0 < result.cardinality < 100
        assert result.t_all_ms <= 150.0  # budget + one answer's slack

    def test_generous_budget_completes(self):
        mediator = self.make()
        result = mediator.query("?- p(X).", max_time_ms=1e9)
        assert result.complete
        assert result.cardinality == 100

    def test_budget_with_no_answers_in_time_is_best_effort(self):
        # the first answer takes 10ms; a 5ms budget still yields it
        # (budgets are checked between answers, like a user watching)
        mediator = self.make()
        result = mediator.query("?- p(X).", max_time_ms=5.0)
        assert result.cardinality >= 1
        assert not result.complete


# ---------------------------------------------------------------------------
# Per-query call memoization (paper §7 footnote 2)
# ---------------------------------------------------------------------------


class TestCallMemoization:
    def make(self, memoize: bool):
        from repro.core.executor import Executor
        from repro.core.model import Comparison, make_in
        from repro.core.plans import CallStep, CompareStep, Plan
        from repro.core.terms import AttrPath, Variable
        from repro.domains.registry import DomainRegistry

        counter = {"inner": 0}

        def inner(x):
            counter["inner"] += 1
            return ([x * 10], 30.0, 30.0)

        # six distinct outer rows whose .2 column repeats: 1,1,1,2,2,2 —
        # so the ground inner call repeats (the paper's no-dup-elimination
        # scenario)
        outer_rows = [(f"r{i}", 1 if i < 3 else 2) for i in range(6)]
        domain = simple_domain(
            "d",
            {"outer": lambda: list(outer_rows), "inner": inner},
        )
        registry = DomainRegistry([domain])
        executor = Executor(
            registry, SimClock(), init_overhead_ms=0.0, display_cost_ms=0.0,
            memoize_calls=memoize,
        )
        T, K, Y = Variable("T"), Variable("K"), Variable("Y")
        plan = Plan(
            (
                CallStep(make_in(T, "d", "outer")),
                CompareStep(Comparison("=", AttrPath(T, (2,)), K)),
                CallStep(make_in(Y, "d", "inner", K)),
            ),
            (T, Y),
        )
        return executor, plan, counter

    def test_without_memo_duplicate_calls_reexecute(self):
        executor, plan, counter = self.make(memoize=False)
        result = executor.run(plan)
        assert counter["inner"] == 6  # the paper's no-dup-elimination default
        assert result.cardinality == 6

    def test_memo_collapses_duplicate_calls(self):
        executor, plan, counter = self.make(memoize=True)
        result = executor.run(plan)
        assert counter["inner"] == 2  # one per distinct argument
        assert result.cardinality == 6  # answers unchanged
        assert result.provenance["memo"] == 4

    def test_memo_saves_simulated_time(self):
        plain_exec, plan, __ = self.make(memoize=False)
        plain = plain_exec.run(plan)
        memo_exec, plan2, __ = self.make(memoize=True)
        memoized = memo_exec.run(plan2)
        assert memoized.t_all_ms < plain.t_all_ms / 2
        assert sorted(memoized.answers) == sorted(plain.answers)

    def test_memo_scope_is_one_run(self):
        executor, plan, counter = self.make(memoize=True)
        executor.run(plan)
        executor.run(plan)
        assert counter["inner"] == 4  # fresh memo per run


# ---------------------------------------------------------------------------
# Multi-table DCSM configuration (paper §6.3's table collection)
# ---------------------------------------------------------------------------


class TestMultiTableDcsm:
    def test_section63_table_collection(self):
        """Replicate the §6.3 walk-through end-to-end through the DCSM:
        tables d:f($b,B,C) and d:f($b,$b,$b); probe d:f(A,$b,2)."""
        from repro.core.model import GroundCall
        from repro.dcsm.module import DCSM
        from repro.dcsm.patterns import BOUND, CallPattern
        from repro.domains.base import CallResult

        dcsm = DCSM(mode="lossy", use_raw_fallback=False)
        data = [
            (("a", 1, 2), 10.0),
            (("b", 1, 2), 20.0),
            (("b", 2, 3), 40.0),
        ]
        for args, t in data:
            dcsm.record(
                CallResult(
                    call=GroundCall("d", "f", args),
                    answers=(1,),
                    t_first_ms=t / 2,
                    t_all_ms=t,
                )
            )
        dcsm.configure_tables("d", "f", [(1, 2), ()])
        dcsm.summarize()
        # probe d:f(A, $b, 2): no dims-{0,2} table; relax A -> $b;
        # no dims-{2} table either, but the dims-{1,2} table can
        # aggregate it; groups (1,2) match -> avg(10, 20) = 15
        vector = dcsm.cost(CallPattern("d", "f", ("a", BOUND, 2)))
        assert vector.t_all_ms == pytest.approx(15.0)
        # probe with unseen C: falls through to the global table
        vector = dcsm.cost(CallPattern("d", "f", (BOUND, BOUND, 9)))
        assert vector.t_all_ms == pytest.approx((10 + 20 + 40) / 3)

    def test_multi_table_direct_lookups(self):
        from repro.core.model import GroundCall
        from repro.dcsm.module import DCSM
        from repro.dcsm.patterns import BOUND, CallPattern
        from repro.domains.base import CallResult

        dcsm = DCSM(mode="lossy", use_raw_fallback=False)
        for args, t in [((1, "x"), 10.0), ((2, "x"), 30.0), ((2, "y"), 50.0)]:
            dcsm.record(
                CallResult(
                    call=GroundCall("d", "g", args),
                    answers=(1,),
                    t_first_ms=t / 2,
                    t_all_ms=t,
                )
            )
        dcsm.configure_tables("d", "g", [(0, 1), (0,), (1,)])
        dcsm.summarize()
        assert dcsm.cost(CallPattern("d", "g", (2, "x"))).t_all_ms == pytest.approx(30.0)
        assert dcsm.cost(CallPattern("d", "g", (2, BOUND))).t_all_ms == pytest.approx(40.0)
        assert dcsm.cost(CallPattern("d", "g", (BOUND, "x"))).t_all_ms == pytest.approx(20.0)

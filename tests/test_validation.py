"""Program validation tests."""

import pytest

from repro.core.mediator import Mediator
from repro.core.parser import parse_program
from repro.core.validation import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    validate_program,
)
from repro.domains.base import simple_domain
from repro.domains.registry import DomainRegistry


@pytest.fixture
def registry() -> DomainRegistry:
    return DomainRegistry(
        [simple_domain("d", {"f": lambda x: [x], "g": lambda: [1]})]
    )


def issues_for(text: str, registry) -> list:
    return validate_program(parse_program(text), registry)


class TestCallChecks:
    def test_clean_program(self, registry):
        assert issues_for("p(X) :- in(X, d:g()).", registry) == []

    def test_unknown_domain(self, registry):
        issues = issues_for("p(X) :- in(X, mystery:f(1)).", registry)
        assert len(issues) == 1
        assert issues[0].severity == SEVERITY_ERROR
        assert "mystery" in issues[0].message

    def test_unknown_function(self, registry):
        issues = issues_for("p(X) :- in(X, d:zap(1)).", registry)
        assert any("zap" in issue.message for issue in issues)
        assert any("exports" in issue.message for issue in issues)

    def test_arity_mismatch(self, registry):
        issues = issues_for("p(X) :- in(X, d:f(1, 2)).", registry)
        assert any("argument" in issue.message for issue in issues)

    def test_remote_domains_unwrapped(self):
        mediator = Mediator()
        mediator.register_domain(
            simple_domain("d", {"f": lambda x: [x]}), site="italy"
        )
        mediator.load_program("p(X) :- in(X, d:f(1)).")
        assert mediator.validate_program() == []


class TestStructuralChecks:
    def test_undefined_predicate(self, registry):
        issues = issues_for("p(X) :- q(X).", registry)
        assert any("q/1" in issue.message for issue in issues)

    def test_recursion_detected(self, registry):
        issues = issues_for("p(X) :- p(X).", registry)
        assert any("recursive" in issue.message for issue in issues)

    def test_unorderable_body_warned(self, registry):
        # Y is never bound: d:f(Y) can never execute
        issues = issues_for("p(X) :- in(X, d:f(Y)).", registry)
        warnings = [i for i in issues if i.severity == SEVERITY_WARNING]
        assert warnings
        assert "never bound" in warnings[0].message

    def test_head_vars_assumed_bindable(self, registry):
        # Y is a head variable: a query may bind it, so no warning
        assert issues_for("p(X, Y) :- in(X, d:f(Y)).", registry) == []

    def test_binding_equality_counts(self, registry):
        text = "p(X) :- =(Y, 5) & in(X, d:f(Y))."
        assert issues_for(text, registry) == []

    def test_idb_outputs_assumed_bindable(self, registry):
        text = "base(Y) :- in(Y, d:g()).\np(X) :- base(Y) & in(X, d:f(Y))."
        assert issues_for(text, registry) == []

    def test_errors_sorted_before_warnings(self, registry):
        text = "p(X) :- in(X, mystery:f(Y)) & in(X, d:f(Z))."
        issues = issues_for(text, registry)
        severities = [issue.severity for issue in issues]
        assert severities == sorted(
            severities, key=lambda s: s != SEVERITY_ERROR
        )

    def test_issue_str(self, registry):
        issues = issues_for("p(X) :- q(X).", registry)
        assert "error" in str(issues[0])


class TestMediatorIntegration:
    def test_validate_via_mediator(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"g": lambda: [1]}))
        mediator.load_program("p(X) :- in(X, d:g()).\nbad(X) :- in(X, nowhere:f()).")
        issues = mediator.validate_program()
        assert len(issues) == 1
        assert "nowhere" in issues[0].message

"""The ``repro lint`` subcommand and the shell's ``:validate`` counts."""

import io
import json
from pathlib import Path

import pytest

from repro.cli import MediatorShell, lint_main, main
from repro.core.mediator import Mediator
from repro.domains.base import simple_domain
from repro.errors import ReproError

PROGRAMS = Path(__file__).parent.parent / "examples" / "programs"

BROKEN_ARGS = [
    "--demo",
    "rope",
    "--query",
    "?- stuck(Object).",
    "--query",
    "?- caller(Frames).",
    "--query",
    "?- empty(Size).",
    "--invariants",
    str(PROGRAMS / "broken.inv"),
    str(PROGRAMS / "broken.med"),
]


class TestLintMain:
    def test_rope_program_file_is_clean(self):
        out = io.StringIO()
        code = lint_main(
            ["--demo", "rope", str(PROGRAMS / "rope.med")], stdout=out
        )
        assert code == 0
        assert "no issues found." in out.getvalue()

    def test_demo_own_program_analyzed_without_files(self):
        out = io.StringIO()
        code = lint_main(["--demo", "rope"], stdout=out)
        assert code == 0

    def test_broken_program_exits_2(self):
        out = io.StringIO()
        code = lint_main(BROKEN_ARGS, stdout=out)
        assert code == 2
        text = out.getvalue()
        # the acceptance-criteria quintet, one stable code each
        assert "MED120" in text  # infeasible call adornment
        assert "MED130" in text  # unsatisfiable comparison chain
        assert "MED131" in text  # unreachable IDB predicate
        assert "MED143" in text  # self-referential invariant
        assert "MED144" in text  # cyclic invariant chain
        assert "MED146" in text  # invariant no call can match
        # the binding-flow / relevance sextet (docs/ANALYSIS.md)
        assert "MED150" in text  # argument position never bindable
        assert "MED151" in text  # rule specialization unreached
        assert "MED152" in text  # statically redundant literal
        assert "MED153" in text  # rule statically filtered
        assert "MED154" in text  # domain-call output never used
        assert "MED155" in text  # comparison statically true

    def test_json_report_is_parseable(self):
        out = io.StringIO()
        code = lint_main(BROKEN_ARGS + ["--json"], stdout=out)
        payload = json.loads(out.getvalue())
        assert payload["exit_code"] == code == 2
        assert payload["errors"] >= 1
        assert payload["schema_version"] == 2
        codes = {d["code"] for d in payload["diagnostics"]}
        assert {"MED120", "MED130", "MED131", "MED143", "MED144"} <= codes
        assert {
            "MED150",
            "MED151",
            "MED152",
            "MED153",
            "MED154",
            "MED155",
        } <= codes
        # deterministic output: diagnostics arrive sorted by (code, rule)
        keys = [(d["code"], d["rule"], d["literal"]) for d in payload["diagnostics"]]
        assert keys == sorted(keys)

    def test_warnings_only_exit_1(self, tmp_path):
        path = tmp_path / "warn.med"
        path.write_text("p(X) :- in(X, d:f(Y)).")
        out = io.StringIO()
        code = lint_main([str(path)], stdout=out)
        assert code == 1
        assert "MED120" in out.getvalue()

    def test_no_registry_skips_registration_checks(self, tmp_path):
        path = tmp_path / "prog.med"
        path.write_text("p(X) :- in(X, ghost:f()).")
        out = io.StringIO()
        assert lint_main([str(path)], stdout=out) == 0

    def test_unknown_option_rejected(self):
        with pytest.raises(ReproError):
            lint_main(["--bogus"], stdout=io.StringIO())

    def test_option_missing_value_rejected(self):
        with pytest.raises(ReproError):
            lint_main(["--query"], stdout=io.StringIO())


class TestMainDispatch:
    def test_lint_subcommand_exit_code(self, capsys):
        code = main(["lint", "--demo", "rope", str(PROGRAMS / "rope.med")])
        assert code == 0
        assert "no issues found." in capsys.readouterr().out

    def test_lint_missing_file_exits_2(self, capsys):
        code = main(["lint", "/nonexistent/never.med"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_lint_unknown_demo_exits_2(self, capsys):
        code = main(["lint", "--demo", "ghost"])
        assert code == 2


def make_shell(program: str) -> MediatorShell:
    mediator = Mediator()
    mediator.register_domain(
        simple_domain("d", {"f": lambda: [1], "g": lambda x: [x]})
    )
    mediator.load_program(program)
    return MediatorShell(mediator, stdin=io.StringIO(), stdout=io.StringIO())


class TestShellValidate:
    def test_error_counts_and_exit_status(self):
        shell = make_shell("p(X) :- in(X, ghost:f()).")
        shell.handle(":validate")
        text = shell.stdout.getvalue()
        assert "1 error(s), 0 warning(s)." in text
        assert shell.exit_status == 1

    def test_warnings_do_not_fail_the_shell(self):
        shell = make_shell("p(X) :- in(X, d:g(Y)).")
        shell.handle(":validate")
        text = shell.stdout.getvalue()
        assert "0 error(s), 1 warning(s)." in text
        assert shell.exit_status == 0

    def test_clean_program_reports_ok(self):
        shell = make_shell("p(X) :- in(X, d:f()).")
        shell.handle(":validate")
        assert "program OK" in shell.stdout.getvalue()
        assert shell.exit_status == 0

    def test_run_returns_exit_status(self):
        shell = make_shell("p(X) :- in(X, ghost:f()).")
        shell.stdin = io.StringIO(":validate\n:quit\n")
        assert shell.run() == 1

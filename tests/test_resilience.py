"""Fault injection, retry/backoff/deadline policy, and degraded answers.

Covers the resilience layer end to end: the seeded fault injector, the
retry loop charging backoff to the simulated clock, the typed error
taxonomy, and the executor's fallback to stale CIM answers when a source
stays down — including the acceptance scenario of a query surviving a
site with 30% injected transient failures.
"""

import io
import random

import pytest

from repro.core.explain import explain_last_execution
from repro.core.mediator import Mediator
from repro.core.model import GroundCall
from repro.domains.base import simple_domain
from repro.errors import (
    DeadlineExceededError,
    PermanentSourceError,
    ReproError,
    RetryExhaustedError,
    SourceTimeoutError,
    SourceUnavailableError,
    TransientSourceError,
)
from repro.metrics import MetricsRegistry
from repro.net.clock import SimClock
from repro.net.faults import FaultInjector, FaultSpec
from repro.net.policy import RetryPolicy, run_with_retry

CALL = GroundCall("d", "f", ())


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ReproError):
            FaultSpec(failure_rate=1.5)
        with pytest.raises(ReproError):
            FaultSpec(timeout_rate=-0.1)
        with pytest.raises(ReproError):
            FaultSpec(failure_rate=0.6, timeout_rate=0.6)
        with pytest.raises(ReproError):
            FaultSpec(timeout_ms=-1)

    def test_defaults_are_quiet(self):
        injector = FaultInjector(FaultSpec())
        for _ in range(50):
            injector.on_attempt(CALL)
        assert injector.injected_total == 0


class TestFaultInjector:
    def outcomes(self, injector, n=50):
        out = []
        for _ in range(n):
            try:
                injector.on_attempt(CALL)
                out.append("ok")
            except SourceTimeoutError:
                out.append("timeout")
            except TransientSourceError:
                out.append("transient")
            except PermanentSourceError:
                out.append("permanent")
        return out

    def test_seed_determinism(self):
        spec = FaultSpec(failure_rate=0.3, timeout_rate=0.2, seed=7)
        first = self.outcomes(FaultInjector(spec))
        second = self.outcomes(FaultInjector(spec))
        assert first == second
        assert set(first) >= {"ok", "transient"}

    def test_down_always_permanent(self):
        injector = FaultInjector(FaultSpec(down=True))
        assert self.outcomes(injector, n=5) == ["permanent"] * 5
        assert injector.injected_permanent == 5

    def test_permanent_failures(self):
        injector = FaultInjector(FaultSpec(failure_rate=1.0, permanent=True))
        assert self.outcomes(injector, n=3) == ["permanent"] * 3

    def test_timeout_charges_clock(self):
        clock = SimClock()
        injector = FaultInjector(FaultSpec(timeout_rate=1.0, timeout_ms=750))
        with pytest.raises(SourceTimeoutError) as excinfo:
            injector.on_attempt(CALL, site="italy", clock=clock)
        assert clock.now_ms == 750
        assert excinfo.value.timeout_ms == 750
        assert excinfo.value.site == "italy"

    def test_transient_charges_failure_latency(self):
        clock = SimClock()
        injector = FaultInjector(FaultSpec(failure_rate=1.0, failure_latency_ms=30))
        with pytest.raises(TransientSourceError):
            injector.on_attempt(CALL, clock=clock)
        assert clock.now_ms == 30

    def test_metrics_wired(self):
        metrics = MetricsRegistry()
        injector = FaultInjector(FaultSpec(failure_rate=1.0), metrics=metrics)
        with pytest.raises(TransientSourceError):
            injector.on_attempt(CALL)
        assert metrics.value("net.faults.transient") == 1.0


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ReproError):
            RetryPolicy(deadline_ms=0)

    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(
            base_backoff_ms=10, backoff_multiplier=2, max_backoff_ms=35, jitter=0.0
        )
        waits = [policy.backoff_ms(attempt) for attempt in (1, 2, 3, 4)]
        assert waits == [10, 20, 35, 35]

    def test_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(base_backoff_ms=100, jitter=0.2)
        waits1 = [policy.backoff_ms(1, random.Random(5)) for _ in range(1)]
        waits2 = [policy.backoff_ms(1, random.Random(5)) for _ in range(1)]
        assert waits1 == waits2
        assert all(80 <= w <= 120 for w in waits1)

    def test_retryable_matrix(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientSourceError("d"))
        assert policy.is_retryable(SourceTimeoutError("d"))
        assert not policy.is_retryable(PermanentSourceError("d"))
        assert not policy.is_retryable(SourceUnavailableError("d"))
        assert RetryPolicy(retry_outages=True).is_retryable(
            SourceUnavailableError("d")
        )


class TestRunWithRetry:
    def flaky_fn(self, failures):
        state = {"left": failures, "calls": 0}

        def fn():
            state["calls"] += 1
            if state["left"] > 0:
                state["left"] -= 1
                raise TransientSourceError("d")
            return "answer"

        return fn, state

    def test_recovers_within_budget(self):
        clock = SimClock()
        fn, state = self.flaky_fn(failures=2)
        observed = []
        policy = RetryPolicy(max_attempts=4, base_backoff_ms=10, jitter=0.0)
        result = run_with_retry(
            fn, policy, clock, on_retry=lambda a, e, b: observed.append((a, b))
        )
        assert result == "answer"
        assert state["calls"] == 3
        assert observed == [(1, 10.0), (2, 20.0)]
        assert clock.now_ms == pytest.approx(30.0)  # backoffs were charged

    def test_exhaustion_raises_typed_error(self):
        clock = SimClock()
        fn, state = self.flaky_fn(failures=99)
        policy = RetryPolicy(max_attempts=3, base_backoff_ms=1, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            run_with_retry(fn, policy, clock)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last, TransientSourceError)
        assert state["calls"] == 3

    def test_deadline_raises_typed_error_and_burns_budget_only(self):
        clock = SimClock()
        fn, _ = self.flaky_fn(failures=99)
        policy = RetryPolicy(
            max_attempts=10, base_backoff_ms=40, jitter=0.0, deadline_ms=100
        )
        with pytest.raises(DeadlineExceededError) as excinfo:
            run_with_retry(fn, policy, clock)
        assert excinfo.value.deadline_ms == 100
        assert clock.now_ms == pytest.approx(100.0)  # never waits past deadline

    def test_deadline_shorter_than_first_backoff_charges_deadline_exactly(self):
        """Edge: deadline_ms < base_backoff_ms.  The first backoff would
        overshoot the deadline, so the clock must be charged only up to
        the deadline — never the full backoff — before the typed error."""
        clock = SimClock()
        fn, state = self.flaky_fn(failures=99)
        policy = RetryPolicy(
            max_attempts=10,
            base_backoff_ms=500,
            jitter=0.0,
            deadline_ms=120,
            retry_outages=True,
        )
        with pytest.raises(DeadlineExceededError) as excinfo:
            run_with_retry(fn, policy, clock)
        assert excinfo.value.deadline_ms == 120
        assert state["calls"] == 1  # no second dial fits inside the deadline
        assert clock.now_ms == pytest.approx(120.0)  # charged to the deadline, not 500ms

    def test_non_retryable_passes_through(self):
        clock = SimClock()
        calls = []

        def fn():
            calls.append(1)
            raise PermanentSourceError("d", site="italy")

        with pytest.raises(PermanentSourceError):
            run_with_retry(fn, RetryPolicy(), clock)
        assert len(calls) == 1  # no second attempt

    def test_backoff_can_wait_out_an_outage(self):
        clock = SimClock()

        def fn():
            if clock.now_ms < 100:
                raise SourceUnavailableError("d", until_ms=100)
            return "back"

        policy = RetryPolicy(
            max_attempts=5, base_backoff_ms=60, jitter=0.0, retry_outages=True
        )
        assert run_with_retry(fn, policy, clock) == "back"
        assert clock.now_ms >= 100


def build_mediator(policy=None, faults=None, ttl_ms=None, **kwargs):
    mediator = Mediator(retry_policy=policy, **kwargs)
    if ttl_ms is not None:
        mediator.cim.cache.ttl_ms = ttl_ms
    domain = simple_domain("d", {"g": lambda: ["a", "b", "c"]})
    mediator.register_domain(domain, site="cornell", faults=faults)
    mediator.load_program("q(X) :- in(X, d:g()).")
    return mediator


class TestDegradedAnswers:
    def test_permanent_failure_with_warm_cim_serves_degraded(self):
        injector = FaultInjector(FaultSpec())
        mediator = build_mediator(
            policy=RetryPolicy(max_attempts=3, base_backoff_ms=10),
            faults=injector,
            ttl_ms=1_000,
        )
        warm = mediator.query("?- q(X).", use_cim=True)
        assert warm.cardinality == 3 and not warm.degraded

        mediator.clock.advance(5_000)  # cache entry is now TTL-expired
        injector.spec = FaultSpec(down=True)  # site goes hard-down
        result = mediator.query("?- q(X).", use_cim=True)

        assert result.cardinality == 3
        assert result.degraded and not result.complete
        assert dict(result.execution.provenance) == {"degraded": 1}
        assert "DEGRADED" in str(result)
        assert mediator.metrics.value("executor.degraded_calls") == 1.0
        assert mediator.metrics.value("cim.degraded_served") == 1.0
        assert mediator.cim.stats.degraded_served == 1

    def test_cold_cache_cannot_degrade(self):
        mediator = build_mediator(
            policy=RetryPolicy(max_attempts=2, base_backoff_ms=1),
            faults=FaultSpec(down=True),
        )
        with pytest.raises(PermanentSourceError):
            mediator.query("?- q(X).", use_cim=True)
        assert mediator.metrics.value("executor.failures") == 1.0

    def test_degradation_can_be_disabled(self):
        injector = FaultInjector(FaultSpec())
        mediator = build_mediator(
            policy=RetryPolicy(max_attempts=2, base_backoff_ms=1),
            faults=injector,
            ttl_ms=1_000,
            degrade_on_failure=False,
        )
        mediator.query("?- q(X).", use_cim=True)
        mediator.clock.advance(5_000)
        injector.spec = FaultSpec(down=True)
        with pytest.raises(PermanentSourceError):
            mediator.query("?- q(X).", use_cim=True)

    def test_no_policy_keeps_legacy_behaviour(self):
        mediator = build_mediator(faults=FaultSpec(down=True))
        with pytest.raises(PermanentSourceError):
            mediator.query("?- q(X).", use_cim=True)


class TestAcceptance:
    """A query against a 30%-flaky site completes under the retry policy,
    with nonzero retry and CIM-hit counters in every report surface."""

    def build(self):
        mediator = Mediator(
            retry_policy=RetryPolicy(max_attempts=6, base_backoff_ms=5, seed=1)
        )
        domain = simple_domain(
            "d",
            {
                "items": lambda: list(range(8)),
                "lookup": lambda x: [x * 10],
            },
        )
        mediator.register_domain(
            domain, site="cornell", faults=FaultSpec(failure_rate=0.3, seed=11)
        )
        mediator.load_program(
            "pairs(X, Y) :- in(X, d:items()) & in(Y, d:lookup(X))."
        )
        return mediator

    def test_flaky_site_query_completes_with_nonzero_counters(self):
        mediator = self.build()
        cold = mediator.query("?- pairs(X, Y).", use_cim=True)
        assert cold.cardinality == 8 and cold.complete

        # the retry policy absorbed injected transients on the way
        assert cold.retries > 0
        assert mediator.metrics.value("executor.retries") > 0
        assert mediator.metrics.value("net.faults.transient") > 0

        # a second run is served by the CIM without touching the source
        warm = mediator.query("?- pairs(X, Y).", use_cim=True)
        assert warm.cardinality == 8
        assert mediator.metrics.value("cim.hits.exact") > 0
        assert mediator.cim.stats.hits > 0

    def test_explain_last_execution_reports_resilience(self):
        mediator = self.build()
        result = mediator.query("?- pairs(X, Y).", use_cim=True)
        report = explain_last_execution(result)
        assert f"resilience: {result.retries} retries" in report
        assert result.retries > 0

    def test_stats_cli_reports_resilience(self):
        from repro.cli import stats_main

        buffer = io.StringIO()
        code = stats_main(
            ["--demo", "rope", "--cim", "--flaky", "0.3",
             "?- actors(A).", "?- actors(A)."],
            stdout=buffer,
        )
        output = buffer.getvalue()
        assert code == 0
        assert "executor.retries" in output
        assert "net.faults.transient" in output
        assert "cim.hits.exact" in output
        retries = float(
            next(
                line.split()[-1]
                for line in output.splitlines()
                if line.startswith("executor.retries")
            )
        )
        assert retries > 0

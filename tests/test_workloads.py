"""Workload package tests: dataset fidelity and generators."""

import pytest

from repro.core.model import GroundCall
from repro.domains.spatial.domain import SpatialDomain
from repro.workloads.datasets import (
    ROPE_CAST,
    build_inventory_engine,
    build_logistics_terrain,
    build_points_file,
    build_rope_avis,
)
from repro.workloads.generators import CallWorkload, frame_interval_pool, zipf_choice


class TestRopeDataset:
    def test_paper_cardinalities(self):
        avis = build_rope_avis()
        video = avis.video("rope")
        assert len(video.objects_between(4, 47)) == 19
        assert len(video.objects_between(4, 127)) == 24
        assert len(ROPE_CAST) == 6
        # every cast role is an AVIS object
        roles = {role for __, role in ROPE_CAST}
        assert roles <= set(video.objects())

    def test_video_has_late_objects_outside_both_intervals(self):
        video = build_rope_avis().video("rope")
        all_objects = set(video.objects())
        in_127 = set(video.objects_between(4, 127))
        assert all_objects - in_127  # the late props exist


class TestLogisticsDataset:
    def test_inventory_queryable(self):
        engine = build_inventory_engine()
        result = engine.execute(
            GroundCall("ingres", "equal", ("inventory", "item", "h-22 fuel"))
        )
        assert result.cardinality == 3

    def test_terrain_routes_between_all_places(self):
        terrain = build_logistics_terrain()
        places = terrain.grid.place_names()
        assert len(places) >= 5
        for destination in places:
            if destination == "place1":
                continue
            result = terrain.execute(
                GroundCall("terraindb", "findrte", ("place1", destination))
            )
            assert result.cardinality == 1, f"no route to {destination}"


class TestPointsDataset:
    def test_points_within_square_and_diameter_under_142(self):
        domain = SpatialDomain()
        build_points_file(domain, count=200)
        index = domain.file("points")
        min_x, min_y, max_x, max_y = index.bounds
        assert 0 <= min_x and max_x <= 100
        assert 0 <= min_y and max_y <= 100
        assert index.diameter <= 142

    def test_radius_142_covers_everything(self):
        domain = SpatialDomain()
        build_points_file(domain, count=150)
        index = domain.file("points")
        everything = index.range_query(50, 50, 142)
        assert len(everything.points) == len(index)


class TestGenerators:
    def test_zipf_uniform_degenerate(self):
        import random

        rng = random.Random(0)
        items = [1, 2, 3]
        draws = {zipf_choice(rng, items, skew=0) for _ in range(50)}
        assert draws == {1, 2, 3}

    def test_zipf_skew_prefers_head(self):
        import random

        rng = random.Random(0)
        items = list(range(10))
        draws = [zipf_choice(rng, items, skew=2.0) for _ in range(500)]
        head = sum(1 for d in draws if d == 0)
        tail = sum(1 for d in draws if d == 9)
        assert head > 5 * max(tail, 1)

    def test_zipf_empty_rejected(self):
        import random

        with pytest.raises(ValueError):
            zipf_choice(random.Random(0), [])

    def test_call_workload_deterministic(self):
        w1 = CallWorkload("d", "f", (["a", "b"], [1, 2, 3]), seed=5)
        w2 = CallWorkload("d", "f", (["a", "b"], [1, 2, 3]), seed=5)
        assert list(w1.draws(10)) == list(w2.draws(10))

    def test_call_workload_shape(self):
        workload = CallWorkload("d", "f", (["a"], [1, 2]), seed=1)
        call = workload.draw()
        assert call.domain == "d"
        assert call.args[0] == "a"
        assert call.args[1] in (1, 2)
        assert workload.distinct_space() == 2

    def test_frame_interval_pool_clipped(self):
        pool = frame_interval_pool(100, starts=[1, 90], widths=[5, 50])
        assert (90, 100) in pool
        assert all(1 <= first <= last <= 100 for first, last in pool)

"""Cache and Invariant Manager tests: the §4.1 lookup cascade, completion
policies, encoded calls, outage behaviour."""

import pytest

from repro.cim.manager import CacheInvariantManager, CimPolicy
from repro.core.model import GroundCall
from repro.core.parser import parse_invariant
from repro.domains.base import (
    SOURCE_CACHE,
    SOURCE_DOMAIN,
    SOURCE_INVARIANT_EQ,
    SOURCE_INVARIANT_PARTIAL,
    simple_domain,
)
from repro.domains.registry import DomainRegistry
from repro.errors import BadCallError, SourceUnavailableError
from repro.net.clock import SimClock

CONTAINMENT = parse_invariant(
    "A1 <= A2 & B2 <= B1 => d:span(A1, B1) >= d:span(A2, B2)."
)


def span_impl(a, b):
    """Answers = integers in [a, b] ∩ [0, 100]; expensive."""
    values = [i for i in range(max(a, 0), min(b, 100) + 1)]
    return values, 50.0, 50.0 + len(values)


@pytest.fixture
def cim():
    domain = simple_domain("d", {"span": span_impl})
    registry = DomainRegistry([domain])
    clock = SimClock()
    manager = CacheInvariantManager(registry, clock, invariants=[CONTAINMENT])
    return manager


def span(a, b) -> GroundCall:
    return GroundCall("d", "span", (a, b))


class TestCascade:
    def test_miss_then_exact_hit(self, cim):
        first = cim.lookup(span(1, 5))
        assert first.provenance == SOURCE_DOMAIN
        second = cim.lookup(span(1, 5))
        assert second.provenance == SOURCE_CACHE
        assert second.answers == first.answers
        assert second.t_all_ms < first.t_all_ms / 10
        assert cim.stats.exact_hits == 1

    def test_equality_invariant_hit(self, cim):
        clip = parse_invariant("B >= 100 => d:span(A, B) = d:span(A, 100).")
        cim.add_invariant(clip)
        cim.lookup(span(90, 100))
        result = cim.lookup(span(90, 5000))
        assert result.provenance == SOURCE_INVARIANT_EQ
        assert result.complete

    def test_partial_hit_serial_completes(self, cim):
        partial_source = cim.lookup(span(10, 12))  # caches {10,11,12}
        result = cim.lookup(span(10, 14))
        assert result.provenance == SOURCE_INVARIANT_PARTIAL
        assert result.complete
        assert set(result.answers) == {10, 11, 12, 13, 14}
        # cached answers come first
        assert result.answers[:3] == partial_source.answers
        # fast first answer, full total cost
        assert result.t_first_ms < 2.0
        assert result.t_all_ms > 50.0

    def test_partial_hit_parallel_overlaps(self, cim):
        cim.policy = CimPolicy.PARALLEL
        cim.lookup(span(20, 22))
        result = cim.lookup(span(20, 30))
        serial_estimate = result.t_all_ms
        # parallel total ≈ real call total, not cache + real
        real_only = 50.0 + 11
        assert serial_estimate == pytest.approx(real_only, rel=0.1)

    def test_partial_only_returns_incomplete(self, cim):
        cim.policy = CimPolicy.PARTIAL_ONLY
        cim.lookup(span(30, 33))
        result = cim.lookup(span(30, 40))
        assert not result.complete
        assert set(result.answers) == {30, 31, 32, 33}
        assert result.t_all_ms < 2.0
        assert cim.stats.real_calls == 1  # only the warmup

    def test_partial_only_result_completed_later(self, cim):
        cim.policy = CimPolicy.PARTIAL_ONLY
        cim.lookup(span(40, 42))
        cim.lookup(span(40, 50))  # incomplete, cached as such
        cim.policy = CimPolicy.SERIAL
        result = cim.lookup(span(40, 50))  # incomplete exact entry → complete now
        assert result.complete
        assert set(result.answers) == set(range(40, 51))

    def test_miss_goes_to_source(self, cim):
        result = cim.lookup(span(60, 61))
        assert result.provenance == SOURCE_DOMAIN
        assert cim.stats.misses == 1
        assert cim.stats.real_calls == 1


class TestEncoding:
    def test_encoded_call_decoded(self, cim):
        encoded = GroundCall("cim", "d&span", (1, 3))
        result = cim.execute(encoded)
        assert result.call == span(1, 3)
        assert result.answers == (1, 2, 3)

    def test_direct_call_accepted(self, cim):
        result = cim.execute(span(1, 3))
        assert result.answers == (1, 2, 3)

    def test_bad_encoding_rejected(self, cim):
        with pytest.raises(BadCallError):
            cim.execute(GroundCall("cim", "nosep", ()))

    def test_encode_round_trip(self):
        call = span(2, 9)
        encoded = CacheInvariantManager.encode(call)
        assert encoded.domain == "cim"
        domain = simple_domain("d", {"span": span_impl})
        manager = CacheInvariantManager(DomainRegistry([domain]))
        assert manager.decode(encoded) == call


class TestOutages:
    def make_flaky(self, available: list):
        """A domain that raises unless available[0] is truthy."""

        def impl(a, b):
            if not available[0]:
                raise SourceUnavailableError("d", site="testsite")
            return span_impl(a, b)

        domain = simple_domain("d", {"span": impl})
        registry = DomainRegistry([domain])
        return CacheInvariantManager(
            registry, SimClock(), invariants=[CONTAINMENT]
        )

    def test_stale_partial_served_when_down(self):
        available = [True]
        cim = self.make_flaky(available)
        cim.lookup(span(1, 3))
        available[0] = False
        result = cim.lookup(span(1, 10))
        assert not result.complete
        assert set(result.answers) == {1, 2, 3}
        assert cim.stats.stale_served == 1

    def test_exact_hit_does_not_touch_source(self):
        available = [True]
        cim = self.make_flaky(available)
        cim.lookup(span(1, 3))
        available[0] = False
        result = cim.lookup(span(1, 3))
        assert result.provenance == SOURCE_CACHE
        assert result.complete

    def test_uncached_miss_propagates_outage(self):
        available = [False]
        cim = self.make_flaky(available)
        with pytest.raises(SourceUnavailableError):
            cim.lookup(span(1, 3))

    def test_stale_serving_disabled(self):
        available = [True]
        cim = self.make_flaky(available)
        cim.serve_stale_on_outage = False
        cim.lookup(span(1, 3))
        available[0] = False
        with pytest.raises(SourceUnavailableError):
            cim.lookup(span(1, 10))


class TestObserver:
    def test_observer_sees_real_calls_only(self, cim):
        observed = []
        cim.observer = observed.append
        cim.lookup(span(1, 5))  # real
        cim.lookup(span(1, 5))  # cache hit
        assert len(observed) == 1
        assert observed[0].call == span(1, 5)


class TestSoundness:
    def test_partial_answers_subset_of_real(self, cim):
        """Invariant-derived answers are always a subset of what the real
        call would return (sound, maybe incomplete)."""
        cim.policy = CimPolicy.PARTIAL_ONLY
        cim.lookup(span(10, 13))
        partial = cim.lookup(span(10, 20))
        real, __, __ = span_impl(10, 20)
        assert set(partial.answers) <= set(real)

"""Chaos properties of the self-healing pipeline.

The promise under test (docs/HEALTH.md): under arbitrary source outages
and latency storms every query *terminates* — with full answers, with an
annotated partial whose ``missing_sources`` names exactly the needed
sources that were injected down, or with a typed ``ReproError`` — and a
tripped breaker is never dialed while open.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.errors import ReproError
from repro.net.health import BreakerState, HealthPolicy
from repro.workloads.chaos import ChaosSchedule, build_chaos_testbed

#: oversubscribe the hammer test via the environment (CI sets 16)
STRESS_JOBS = int(os.environ.get("REPRO_STRESS_JOBS", "8"))


def _relations_of(testbed, missing):
    return frozenset(testbed.relation_of(name) for name in missing)


def _first_dead(testbed, needed):
    """The first needed relation (in dial order) with no live source —
    partial-answer mode stops binding flow there, so that is the
    relation the final execution's missing_sources must name."""
    for rel in needed:
        if rel in testbed.dead_relations(needed):
            return rel
    return None


@pytest.mark.chaos
def test_chaos_every_query_terminates_classified():
    """>= 200 queries under a seeded outage/storm schedule: each one
    completes, repairs, degrades to an exact annotated partial, or
    raises a typed error — and open breakers get zero dials."""
    testbed = build_chaos_testbed(relations=4, backups=2, seed=0)
    mediator = testbed.mediator
    policy = mediator.health.policy
    schedule = ChaosSchedule(
        source_names=testbed.source_names(),
        waves=12,
        max_down=2,
        max_storm=1,
        slow_ms=1500.0,
        seed=7,
    )
    baseline_threads = threading.active_count()
    ran = complete = repaired = partial = typed = 0
    for wave in schedule:
        testbed.set_down(wave.down)
        testbed.set_storm(wave.storming, wave.slow_ms)
        # let breakers opened in the previous wave reach their probe window
        mediator.clock.advance(policy.cooldown_ms + 1.0)
        for query_text, needed in testbed.queries():
            dead = testbed.dead_relations(needed)
            try:
                result = mediator.query(query_text)
            except ReproError:
                typed += 1
                ran += 1
                continue
            ran += 1
            assert result.completeness is not None
            status = result.completeness.status
            if not dead:
                # every needed relation had a live source: the run must
                # end complete (possibly after repair) with the exact
                # healthy answer multiset
                assert status in ("complete", "repaired"), (
                    f"{query_text} under down={sorted(wave.down)}: {status}"
                )
                assert sorted(result.answers) == sorted(
                    testbed.expected_answers(needed)
                )
                complete += status == "complete"
                repaired += status == "repaired"
            else:
                assert status == "partial"
                partial += 1
                missing = result.completeness.missing_sources
                assert missing == result.missing_sources
                # exactness: every missing source was injected down, and
                # the relations they serve are exactly the dead prefix
                assert all(testbed.sources[name].down for name in missing)
                assert _relations_of(testbed, missing) == {
                    _first_dead(testbed, needed)
                }
    assert ran >= 200
    assert partial > 0 and (complete + repaired) > 0
    # a breaker that is open must never be dialed
    assert mediator.metrics.value("health.dials_while_open") == 0.0
    # the run leaked no threads (sequential engine: none were created)
    assert threading.active_count() == baseline_threads


@pytest.mark.chaos
def test_chaos_parallel_engine_matches_classification():
    """The same chaos contract holds on the parallel engine."""
    testbed = build_chaos_testbed(relations=3, backups=1, seed=3, jobs=4)
    mediator = testbed.mediator
    policy = mediator.health.policy
    schedule = ChaosSchedule(
        source_names=testbed.source_names(),
        waves=6,
        max_down=1,
        max_storm=1,
        slow_ms=800.0,
        seed=11,
    )
    baseline_threads = threading.active_count()
    for wave in schedule:
        testbed.set_down(wave.down)
        testbed.set_storm(wave.storming, wave.slow_ms)
        mediator.clock.advance(policy.cooldown_ms + 1.0)
        for query_text, needed in testbed.queries():
            dead = testbed.dead_relations(needed)
            result = mediator.query(query_text)
            if not dead:
                assert result.completeness.status in ("complete", "repaired")
                assert sorted(result.answers) == sorted(
                    testbed.expected_answers(needed)
                )
            else:
                assert result.completeness.status == "partial"
                assert all(
                    testbed.sources[name].down
                    for name in result.missing_sources
                )
    assert mediator.metrics.value("health.dials_while_open") == 0.0
    # every per-run worker pool drained
    assert threading.active_count() == baseline_threads


@pytest.mark.chaos
def test_open_breaker_gets_zero_dials():
    """Once the breaker for a down source opens, further queries inside
    the cooldown window never reach the source function at all."""
    testbed = build_chaos_testbed(relations=3, backups=0, seed=5)
    mediator = testbed.mediator
    source = testbed.sources["p0"]
    source.down = True
    threshold = mediator.health.policy.consecutive_failure_threshold
    # enough failing queries to trip CLOSED -> OPEN
    for _ in range(threshold):
        mediator.query("?- q0('s', B).")
    assert mediator.health.state_of("p0") is BreakerState.OPEN
    dials_when_open = source.calls
    for _ in range(5):
        result = mediator.query("?- q0('s', B).")
        assert result.completeness.status == "partial"
    assert source.calls == dials_when_open, "open breaker was dialed"
    assert mediator.metrics.value("health.fast_failures") >= 5.0
    assert mediator.metrics.value("health.dials_while_open") == 0.0
    # after the cooldown the half-open probe readmits a healed source
    source.down = False
    mediator.clock.advance(mediator.health.policy.cooldown_ms + 1.0)
    result = mediator.query("?- q0('s', B).")
    assert result.completeness.status == "complete"
    assert mediator.health.state_of("p0") is BreakerState.CLOSED


@pytest.mark.chaos
def test_hammer_site_trips_mid_wave_pool_drains():
    """16-worker hammer: a healthy source starts failing mid-wave; the
    breaker trips, no in-flight task dials it while open, cancellation
    and the worker pool drain cleanly (thread count returns to
    baseline), and every query still terminates classified."""
    jobs = max(STRESS_JOBS, 16)
    testbed = build_chaos_testbed(
        relations=4,
        backups=1,
        seed=9,
        jobs=jobs,
        health_policy=HealthPolicy(
            consecutive_failure_threshold=2, cooldown_ms=10_000.0
        ),
    )
    mediator = testbed.mediator
    victim = testbed.sources["p2"]
    victim.trip_after = 2  # healthy twice, then hard down mid-wave
    baseline_threads = threading.active_count()
    statuses = []
    for query_text, needed in testbed.queries():
        if 2 not in needed:
            continue  # hammer the victim's relation specifically
        result = mediator.query(query_text)
        assert result.completeness is not None
        statuses.append(result.completeness.status)
    # the victim tripped: later queries degrade to annotated partials
    assert mediator.health.state_of("p2") is BreakerState.OPEN
    assert statuses.count("partial") > 0
    assert mediator.metrics.value("health.dials_while_open") == 0.0
    # the victim was never dialed after its breaker opened: its call
    # count stays put across the post-trip queries
    calls_after = victim.calls
    for _ in range(3):
        mediator.query("?- q2('s', B).")
    assert victim.calls == calls_after
    assert threading.active_count() == baseline_threads

"""Relational substrate tests: schemas, tables, indexes, engine, CSV."""

import io

import pytest

from repro.core.model import GroundCall
from repro.core.terms import Row
from repro.domains.relational.csvio import dump_table_csv, load_table_csv
from repro.domains.relational.engine import RelationalEngine
from repro.domains.relational.table import Schema, Table
from repro.errors import BadCallError, SchemaError


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_index_of(self):
        schema = Schema(("a", "b"))
        assert schema.index_of("b") == 1
        with pytest.raises(SchemaError):
            schema.index_of("zzz")

    def test_row_construction(self):
        schema = Schema(("a", "b"))
        row = schema.row([1, 2])
        assert row.a == 1
        with pytest.raises(SchemaError):
            schema.row([1])


class TestTable:
    def make(self) -> Table:
        table = Table("t", ["k", "v"])
        table.insert_many([(1, "one"), (2, "two"), (3, "three"), (2, "dos")])
        return table

    def test_insert_sequence_and_dict_and_row(self):
        table = Table("t", ["k", "v"])
        table.insert((1, "a"))
        table.insert({"k": 2, "v": "b"})
        table.insert(Row([("k", 3), ("v", "c")]))
        assert len(table) == 3

    def test_insert_wrong_row_schema(self):
        table = Table("t", ["k", "v"])
        with pytest.raises(SchemaError):
            table.insert(Row([("x", 1), ("v", "a")]))

    def test_insert_dict_missing_column(self):
        table = Table("t", ["k", "v"])
        with pytest.raises(SchemaError):
            table.insert({"k": 1})

    def test_full_scan(self):
        table = self.make()
        scan = table.scan()
        assert scan.cardinality == 4
        assert scan.rows_scanned == 4

    def test_select_eq_scan(self):
        table = self.make()
        scan = table.select_eq("k", 2)
        assert scan.cardinality == 2
        assert scan.first_match_position == 1

    def test_select_eq_indexed(self):
        table = self.make()
        table.create_index("k")
        scan = table.select_eq("k", 2)
        assert scan.cardinality == 2
        assert scan.rows_scanned == 2  # probe touches only matches

    def test_index_maintained_on_insert(self):
        table = self.make()
        table.create_index("k")
        table.insert((2, "zwei"))
        assert table.select_eq("k", 2).cardinality == 3

    def test_select_cmp(self):
        import operator

        table = self.make()
        scan = table.select_cmp("k", operator.ge, 2)
        assert scan.cardinality == 3

    def test_select_cmp_type_error_rows_skipped(self):
        import operator

        table = Table("t", ["k"])
        table.insert_many([(1,), ("x",), (3,)])
        scan = table.select_cmp("k", operator.lt, 2)
        assert scan.cardinality == 1

    def test_project(self):
        table = self.make()
        assert table.project("v") == ("one", "two", "three", "dos")


class TestEngine:
    @pytest.fixture
    def engine(self) -> RelationalEngine:
        engine = RelationalEngine("rel")
        engine.create_table(
            "inventory",
            ["item", "loc", "qty"],
            [
                ("fuel", "depot", 100),
                ("ammo", "depot", 50),
                ("fuel", "camp", 20),
            ],
            index_on=["item"],
        )
        return engine

    def call(self, engine, fn, *args):
        return engine.execute(GroundCall("rel", fn, args))

    def test_all(self, engine):
        result = self.call(engine, "all", "inventory")
        assert result.cardinality == 3

    def test_equal_uses_alias(self, engine):
        r1 = self.call(engine, "equal", "inventory", "item", "fuel")
        r2 = self.call(engine, "select_eq", "inventory", "item", "fuel")
        assert r1.answers == r2.answers
        assert r1.cardinality == 2

    def test_indexed_select_is_cheaper(self, engine):
        indexed = self.call(engine, "equal", "inventory", "item", "fuel")
        scanned = self.call(engine, "equal", "inventory", "loc", "depot")
        assert indexed.t_all_ms < scanned.t_all_ms + 1.0

    def test_comparison_selects(self, engine):
        assert self.call(engine, "select_lt", "inventory", "qty", 50).cardinality == 1
        assert self.call(engine, "select_le", "inventory", "qty", 50).cardinality == 2
        assert self.call(engine, "select_gt", "inventory", "qty", 50).cardinality == 1
        assert self.call(engine, "select_ge", "inventory", "qty", 50).cardinality == 2
        assert self.call(engine, "select_ne", "inventory", "loc", "depot").cardinality == 1

    def test_select_range(self, engine):
        result = self.call(engine, "select_range", "inventory", "qty", 20, 60)
        assert result.cardinality == 2

    def test_project_distinct(self, engine):
        result = self.call(engine, "project", "inventory", "item")
        assert set(result.answers) == {"fuel", "ammo"}
        assert result.cardinality == 2  # deduplicated

    def test_count(self, engine):
        result = self.call(engine, "count", "inventory")
        assert result.answers == (3,)

    def test_unknown_table(self, engine):
        with pytest.raises(BadCallError):
            self.call(engine, "all", "nope")

    def test_duplicate_table_rejected(self, engine):
        with pytest.raises(SchemaError):
            engine.create_table("inventory", ["a"])

    def test_monotone_scan_cost(self, engine):
        """Cost grows with rows scanned."""
        small = self.call(engine, "select_lt", "inventory", "qty", 30)
        engine.create_table(
            "big", ["item", "loc", "qty"],
            [("x", "y", i) for i in range(500)],
        )
        big = engine.execute(GroundCall("rel", "select_lt", ("big", "qty", 30)))
        assert big.t_all_ms > small.t_all_ms


class TestCsv:
    def test_round_trip(self):
        table = Table("t", ["name", "qty"])
        table.insert_many([("fuel", 10), ("ammo", 20)])
        buffer = io.StringIO()
        dump_table_csv(table, buffer)
        buffer.seek(0)
        loaded = load_table_csv(buffer, "t2")
        assert loaded.schema.columns == ("name", "qty")
        assert loaded.rows[0].qty == 10  # int inferred

    def test_type_inference(self):
        buffer = io.StringIO("a,b,c\n1,2.5,xyz\n")
        table = load_table_csv(buffer, "t")
        row = table.rows[0]
        assert row.a == 1 and row.b == 2.5 and row.c == "xyz"

    def test_headerless_needs_columns(self):
        buffer = io.StringIO("1,2\n")
        with pytest.raises(SchemaError):
            load_table_csv(buffer, "t", has_header=False)
        buffer.seek(0)
        table = load_table_csv(buffer, "t", has_header=False, columns=["a", "b"])
        assert len(table) == 1

    def test_empty_csv_with_header_flag(self):
        with pytest.raises(SchemaError):
            load_table_csv(io.StringIO(""), "t")

"""MACS substrate tests, plus the subpath_of/prefix_of language extension."""

import pytest

from repro.cim.manager import CacheInvariantManager, CimPolicy
from repro.core.mediator import Mediator
from repro.core.model import Comparison, GroundCall, evaluate_comparison
from repro.core.parser import parse_invariant, parse_literal
from repro.core.terms import Constant, Variable
from repro.domains.macs import (
    MACS_SUBTREE_INVARIANT,
    MacsDomain,
    MediaAsset,
    sample_catalog,
)
from repro.domains.registry import DomainRegistry
from repro.errors import BadCallError
from repro.net.clock import SimClock


# ---------------------------------------------------------------------------
# The comparison-language extension
# ---------------------------------------------------------------------------


class TestPathComparisons:
    def test_prefix_of_raw(self):
        assert evaluate_comparison("prefix_of", "a.b", "a.bc")
        assert evaluate_comparison("prefix_of", "a.b", "a.b.c")
        assert not evaluate_comparison("prefix_of", "a.b", "a")

    def test_subpath_of_component_aware(self):
        assert evaluate_comparison("subpath_of", "a.b", "a.b")
        assert evaluate_comparison("subpath_of", "a.b", "a.b.c")
        assert not evaluate_comparison("subpath_of", "a.b", "a.bc")

    def test_non_strings_never_match(self):
        assert not evaluate_comparison("prefix_of", 1, "1x")
        assert not evaluate_comparison("subpath_of", "a", 7)

    def test_negations(self):
        assert evaluate_comparison("not_prefix_of", "x", "y")
        comparison = Comparison("subpath_of", Variable("A"), Variable("B"))
        assert comparison.negated().op == "not_subpath_of"

    def test_parser_prefix_form(self):
        literal = parse_literal("prefix_of('media.video', P)")
        assert isinstance(literal, Comparison)
        assert literal.op == "prefix_of"
        assert literal.left == Constant("media.video")

    def test_str_round_trip(self):
        literal = parse_literal("subpath_of(P1, P2)")
        assert parse_literal(str(literal)) == literal

    def test_named_op_in_rule_body_as_filter(self):
        from repro.domains.base import simple_domain

        mediator = Mediator()
        mediator.register_domain(
            simple_domain("d", {"paths": lambda: ["a.b", "a.b.c", "a.bc"]})
        )
        mediator.load_program(
            "under(P) :- in(P, d:paths()) & subpath_of('a.b', P)."
        )
        result = mediator.query("?- under(P).")
        assert sorted(result.column("P")) == ["a.b", "a.b.c"]


# ---------------------------------------------------------------------------
# The MACS domain
# ---------------------------------------------------------------------------


@pytest.fixture
def macs() -> MacsDomain:
    domain = MacsDomain()
    domain.add_assets(sample_catalog())
    return domain


class TestMacsDomain:
    def test_in_category_subtree(self, macs):
        result = macs.execute(GroundCall("macs", "in_category", ("media.video.film",)))
        assert set(result.answers) == {"A001", "A002", "A003", "A007"}

    def test_component_boundary_respected(self, macs):
        result = macs.execute(GroundCall("macs", "in_category", ("media.video",)))
        assert "A010" not in result.answers  # media.videoessay excluded
        assert "A009" in result.answers

    def test_exact_category(self, macs):
        result = macs.execute(
            GroundCall("macs", "in_category", ("media.video.documentary",))
        )
        assert result.answers == ("A004",)

    def test_asset_lookup(self, macs):
        result = macs.execute(GroundCall("macs", "asset", ("A001",)))
        row = result.answers[0]
        assert row.title == "Rope"
        assert row.category == "media.video.film.thriller"

    def test_tagged(self, macs):
        result = macs.execute(GroundCall("macs", "tagged", ("hitchcock",)))
        assert set(result.answers) == {"A001", "A002", "A007"}

    def test_categories(self, macs):
        result = macs.execute(GroundCall("macs", "categories", ()))
        assert "media.video.film.thriller" in result.answers
        assert len(result.answers) == len(set(result.answers))

    def test_validation(self, macs):
        with pytest.raises(BadCallError):
            macs.execute(GroundCall("macs", "asset", ("A999",)))
        with pytest.raises(BadCallError):
            macs.execute(GroundCall("macs", "in_category", ("",)))
        with pytest.raises(BadCallError):
            macs.add_asset(MediaAsset("A001", "x", "dup"))
        with pytest.raises(BadCallError):
            macs.add_asset(MediaAsset("A011", ".bad", "t"))


class TestMacsInvariant:
    def make_cim(self, macs):
        return CacheInvariantManager(
            DomainRegistry([macs]),
            SimClock(),
            invariants=[parse_invariant(MACS_SUBTREE_INVARIANT)],
        )

    def test_narrow_cached_serves_broad_partial(self, macs):
        cim = self.make_cim(macs)
        cim.lookup(GroundCall("macs", "in_category", ("media.video.film",)))
        result = cim.lookup(GroundCall("macs", "in_category", ("media.video",)))
        assert result.provenance == "invariant-partial"
        assert result.complete
        truth = macs.execute(GroundCall("macs", "in_category", ("media.video",)))
        assert set(result.answers) == set(truth.answers)

    def test_boundary_case_is_not_matched(self, macs):
        """The soundness trap: cached 'media.videoessay' must NOT serve
        partial answers for 'media.video'... wait — it legitimately may
        not, since A010 is outside that subtree."""
        cim = self.make_cim(macs)
        cim.lookup(GroundCall("macs", "in_category", ("media.videoessay",)))
        cim.policy = CimPolicy.PARTIAL_ONLY
        result = cim.lookup(GroundCall("macs", "in_category", ("media.video",)))
        # no (unsound) partial hit: the only cached entry is out of subtree
        truth = macs.execute(GroundCall("macs", "in_category", ("media.video",)))
        assert set(result.answers) <= set(truth.answers)
        assert "A010" not in result.answers

    def test_partial_only_soundness_sweep(self, macs):
        prefixes = [
            "media", "media.video", "media.video.film",
            "media.video.film.thriller", "media.audio", "media.videoessay",
        ]
        for warm in prefixes:
            for ask in prefixes:
                cim = self.make_cim(macs)
                cim.lookup(GroundCall("macs", "in_category", (warm,)))
                cim.policy = CimPolicy.PARTIAL_ONLY
                got = cim.lookup(GroundCall("macs", "in_category", (ask,)))
                truth = macs.execute(GroundCall("macs", "in_category", (ask,)))
                assert set(got.answers) <= set(truth.answers), (warm, ask)


class TestMacsMediation:
    def test_cross_source_with_avis(self, macs):
        from repro.workloads.datasets import build_rope_avis

        mediator = Mediator()
        mediator.register_domain(macs, site="cornell")
        mediator.register_domain(build_rope_avis(), site="italy")
        mediator.load_program(
            """
            thriller_titles(T) :-
                in(A, macs:in_category('media.video.film.thriller')) &
                in(R, macs:asset(A)) & =(R.title, T).
            """
        )
        result = mediator.query("?- thriller_titles(T).")
        assert sorted(result.column("T")) == ["Rope", "The 39 Steps", "Vertigo"]

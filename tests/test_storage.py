"""Cache storage backends: round-trips, cross-backend parity, warm
restart, cost-aware eviction, crash consistency, and concurrency."""

from __future__ import annotations

import json
import os
import stat
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cim.cache import POLICY_COST, ResultCache
from repro.cim.codec import call_key, decode_entry, encode_entry
from repro.core.mediator import Mediator, _default_storage_root
from repro.core.model import GroundCall
from repro.core.plancache import (
    CachedPlan,
    PlanCache,
    load_plan_records,
    save_plan_cache,
)
from repro.core.terms import value_bytes
from repro.dcsm.codec import decode_observation, encode_observation, observation_key
from repro.dcsm.database import CostVectorDatabase
from repro.dcsm.vectors import CostVector, Observation
from repro.errors import StorageError
from repro.metrics import MetricsRegistry
from repro.storage import (
    CostFrequencyEvictor,
    MemoryBackend,
    ShardedBackend,
    SqliteBackend,
    StorageBackend,
    atomic_write_bytes,
    make_backend,
    shard_prefix,
)
from repro.workloads.datasets import build_rope_testbed

pytestmark = pytest.mark.storage

STORES = ("cim", "dcsm", "plancache")


def _make(kind: str, tmp_path: Path) -> StorageBackend:
    if kind == "memory":
        return MemoryBackend()
    if kind == "sqlite":
        return SqliteBackend(tmp_path / "kv.db")
    return ShardedBackend(tmp_path / "shards", shards=4)


@pytest.fixture(params=["memory", "sqlite", "sharded"])
def backend(request, tmp_path):
    instance = _make(request.param, tmp_path)
    yield instance
    instance.close()


# -- the protocol, per backend -------------------------------------------------


class TestBackendProtocol:
    def test_round_trip(self, backend):
        backend.put("cim", "d:f:[1]", b"alpha")
        assert backend.get("cim", "d:f:[1]") == b"alpha"
        backend.put("cim", "d:f:[1]", b"beta")  # overwrite
        assert backend.get("cim", "d:f:[1]") == b"beta"
        assert backend.get("cim", "missing") is None

    def test_stores_are_namespaced(self, backend):
        backend.put("cim", "k", b"cim-value")
        backend.put("dcsm", "k", b"dcsm-value")
        assert backend.get("cim", "k") == b"cim-value"
        assert backend.get("dcsm", "k") == b"dcsm-value"
        assert backend.get("plancache", "k") is None
        assert backend.delete("dcsm", "k")
        assert backend.get("cim", "k") == b"cim-value"

    def test_delete(self, backend):
        backend.put("cim", "k", b"v")
        assert backend.delete("cim", "k") is True
        assert backend.delete("cim", "k") is False
        assert backend.get("cim", "k") is None

    def test_scan_prefix_sorted(self, backend):
        for key in ("b:y:2", "a:x:1", "a:x:0", "a:z:9"):
            backend.put("cim", key, key.encode())
        assert [k for k, _ in backend.scan_prefix("cim", "a:x:")] == [
            "a:x:0",
            "a:x:1",
        ]
        assert [k for k, _ in backend.scan_prefix("cim", "")] == [
            "a:x:0",
            "a:x:1",
            "a:z:9",
            "b:y:2",
        ]

    def test_use_after_close_raises(self, backend):
        backend.put("cim", "k", b"v")
        backend.close()
        with pytest.raises(StorageError):
            backend.put("cim", "k2", b"v")
        with pytest.raises(StorageError):
            backend.get("cim", "k")
        backend.close()  # idempotent

    def test_metrics_accounting(self, tmp_path, backend):
        registry = MetricsRegistry()
        backend.metrics = registry
        backend.put("cim", "k", b"12345")
        backend.get("cim", "k")
        backend.delete("cim", "k")
        backend.flush()
        assert registry.value("storage.writes") == 1
        assert registry.value("storage.bytes_written") == 5
        assert registry.value("storage.reads") == 1
        assert registry.value("storage.bytes_read") == 5
        assert registry.value("storage.deletes") == 1
        assert registry.value("storage.flushes") == 1


class TestMakeBackend:
    def test_specs(self, tmp_path):
        assert make_backend("memory").kind == "memory"
        sqlite = make_backend(f"sqlite:{tmp_path / 'a.db'}")
        assert sqlite.kind == "sqlite"
        sqlite.close()
        sharded = make_backend(f"sharded:{tmp_path / 'seg'}:5")
        assert sharded.kind == "sharded"
        assert sharded.shards == 5
        sharded.close()

    @pytest.mark.parametrize(
        "spec", ["memory:/nope", "sqlite", "sharded", "redis:host", ""]
    )
    def test_bad_specs(self, spec):
        with pytest.raises(StorageError):
            make_backend(spec)


# -- durability across reopen --------------------------------------------------


@pytest.mark.parametrize("kind", ["sqlite", "sharded"])
def test_reopen_restores_state(kind, tmp_path):
    first = _make(kind, tmp_path)
    for store in STORES:
        for i in range(10):
            first.put(store, f"d:f:{i}", f"{store}-{i}".encode())
    first.delete("cim", "d:f:3")
    first.close()

    second = _make(kind, tmp_path)
    assert second.get("cim", "d:f:3") is None
    assert second.get("cim", "d:f:7") == b"cim-7"
    assert len(list(second.scan_prefix("dcsm", ""))) == 10
    second.close()


def test_sharded_meta_pins_shard_count(tmp_path):
    first = ShardedBackend(tmp_path, shards=3)
    first.put("cim", "d:f:1", b"v")
    first.close()
    # asking for a different count on reopen must not remap existing keys
    second = ShardedBackend(tmp_path, shards=16)
    assert second.shards == 3
    assert second.get("cim", "d:f:1") == b"v"
    second.close()


def test_sharded_routes_by_source_function(tmp_path):
    backend = ShardedBackend(tmp_path, shards=8)
    for i in range(20):
        backend.put("cim", f"video:frames:{i}", b"x")
    backend.flush()
    segments_with_data = [
        path
        for path in sorted(tmp_path.glob("segment-*.json"))
        if json.loads(path.read_bytes()).get("stores")
    ]
    # every entry of one (domain, function) lives in exactly one segment
    assert len(segments_with_data) == 1
    stores = json.loads(segments_with_data[0].read_bytes())["stores"]
    assert len(stores["cim"]) == 20


def test_shard_prefix_convention():
    assert shard_prefix("video:frames:[1,2]") == "video:frames"
    assert shard_prefix("video:frames:a:b") == "video:frames"
    assert shard_prefix("no-colons") == "no-colons"
    assert shard_prefix("one:part") == "one:part"


def test_sqlite_scan_does_not_treat_prefix_as_pattern(tmp_path):
    backend = SqliteBackend(tmp_path / "kv.db")
    backend.put("cim", "a_b:f:1", b"x")
    backend.put("cim", "axb:f:1", b"y")
    backend.put("cim", "a%:f:1", b"z")
    assert [k for k, _ in backend.scan_prefix("cim", "a_b")] == ["a_b:f:1"]
    assert [k for k, _ in backend.scan_prefix("cim", "a%")] == ["a%:f:1"]
    backend.close()


# -- cross-backend parity (property-based) -------------------------------------

_KEYS = st.sampled_from(
    [f"{d}:{f}:{i}" for d in "ab" for f in "xy" for i in range(3)]
    + ["plain", "meta:only"]
)
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete"]),
        st.sampled_from(STORES),
        _KEYS,
        st.binary(max_size=16),
    ),
    max_size=40,
)


@settings(max_examples=30, deadline=None)
@given(ops=_OPS)
def test_backends_agree_with_model(ops, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("parity")
    backends = [_make(kind, tmp) for kind in ("memory", "sqlite", "sharded")]
    model: dict[str, dict[str, bytes]] = {store: {} for store in STORES}
    try:
        for op, store, key, value in ops:
            if op == "put":
                model[store][key] = value
                for backend in backends:
                    backend.put(store, key, value)
            else:
                expected = model[store].pop(key, None) is not None
                for backend in backends:
                    assert backend.delete(store, key) is expected
        for store in STORES:
            expected_items = sorted(model[store].items())
            for backend in backends:
                assert list(backend.scan_prefix(store, "")) == expected_items
                for key, value in expected_items:
                    assert backend.get(store, key) == value
                assert list(backend.scan_prefix(store, "a:x")) == [
                    (k, v) for k, v in expected_items if k.startswith("a:x")
                ]
    finally:
        for backend in backends:
            backend.close()


# -- crash consistency ---------------------------------------------------------


def test_atomic_write_survives_failed_writer(tmp_path, monkeypatch):
    """A writer that dies mid-replace must leave the old snapshot intact
    and no temp litter behind (the torn-write regression)."""
    target = tmp_path / "snapshot.json"
    atomic_write_bytes(target, b'{"generation": 1}')

    def exploding_replace(src, dst):
        raise OSError("simulated crash during rename")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError):
        atomic_write_bytes(target, b'{"generation": 2}')
    monkeypatch.undo()
    assert target.read_bytes() == b'{"generation": 1}'
    assert list(tmp_path.glob("*.tmp")) == []


def test_sqlite_survives_process_kill(tmp_path):
    """Flushed state survives a writer that dies without closing; the
    uncommitted tail is dropped, never a corrupt database."""
    db = tmp_path / "crash.db"
    src = Path(__file__).resolve().parent.parent / "src"
    script = (
        "import os, sys\n"
        f"sys.path.insert(0, {str(src)!r})\n"
        "from repro.storage.sqlite import SqliteBackend\n"
        f"b = SqliteBackend({str(db)!r})\n"
        "for i in range(100):\n"
        "    b.put('cim', f'd:f:{i:03d}', b'durable')\n"
        "b.flush()\n"
        "for i in range(100, 150):\n"
        "    b.put('cim', f'd:f:{i:03d}', b'torn')\n"
        "os._exit(1)\n"  # crash: no commit, no close
    )
    proc = subprocess.run([sys.executable, "-c", script], capture_output=True)
    assert proc.returncode == 1
    reopened = SqliteBackend(db)
    survivors = dict(reopened.scan_prefix("cim", ""))
    assert len(survivors) == 100
    assert all(value == b"durable" for value in survivors.values())
    reopened.close()


def test_sharded_flush_is_atomic_per_segment(tmp_path, monkeypatch):
    backend = ShardedBackend(tmp_path, shards=2)
    backend.put("cim", "d:f:1", b"old")
    backend.flush()
    backend.put("cim", "d:f:1", b"new")

    def exploding_replace(src, dst):
        raise OSError("simulated crash")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError):
        backend.flush()
    monkeypatch.undo()
    # the on-disk segment still holds the previous complete generation
    fresh = ShardedBackend(tmp_path)
    assert fresh.get("cim", "d:f:1") == b"old"
    fresh.close()


# -- concurrency ---------------------------------------------------------------


def test_sqlite_backend_thread_hammer(tmp_path):
    backend = SqliteBackend(tmp_path / "hammer.db", commit_interval=16)
    errors: list[BaseException] = []
    threads = 16
    per_thread = 60

    def worker(worker_id: int) -> None:
        try:
            for i in range(per_thread):
                key = f"d:f:{worker_id:02d}-{i:03d}"
                backend.put("cim", key, f"{worker_id}/{i}".encode())
                assert backend.get("cim", key) == f"{worker_id}/{i}".encode()
                backend.put("dcsm", f"shared:k:{i}", bytes([worker_id]))
                if i % 7 == 0:
                    backend.delete("cim", key)
                if i % 13 == 0:
                    list(backend.scan_prefix("cim", f"d:f:{worker_id:02d}-"))
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    pool = [threading.Thread(target=worker, args=(n,)) for n in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert errors == []
    backend.flush()
    kept = dict(backend.scan_prefix("cim", ""))
    expected_per_thread = per_thread - len(range(0, per_thread, 7))
    assert len(kept) == threads * expected_per_thread
    # every shared key holds the last write of *some* worker
    shared = dict(backend.scan_prefix("dcsm", ""))
    assert len(shared) == per_thread
    assert all(value[0] < threads for value in shared.values())
    backend.close()


# -- codecs --------------------------------------------------------------------


def test_cim_codec_round_trip():
    call = GroundCall("video", "frames_to_objects", ("rope", 4, 47))
    blob = encode_entry(call, ("brandon", "rupert"), True, 12.5, 3)
    fields = decode_entry(blob)
    assert fields["call"] == call
    assert fields["answers"] == ("brandon", "rupert")
    assert fields["complete"] is True
    assert fields["stored_at_ms"] == 12.5
    assert fields["hits"] == 3
    assert call_key(call).startswith("video:frames_to_objects:")
    assert shard_prefix(call_key(call)) == "video:frames_to_objects"


def test_cim_codec_rejects_unknown_version():
    blob = json.dumps({"version": 999}).encode()
    with pytest.raises(StorageError):
        decode_entry(blob)


def test_dcsm_codec_round_trip():
    observation = Observation(
        call=GroundCall("d", "f", (1, "a")),
        vector=CostVector(t_first_ms=1.0, t_all_ms=5.0, cardinality=3.0),
        record_time_ms=100.0,
        complete=True,
    )
    assert decode_observation(encode_observation(observation)) == observation
    assert observation_key("d", "f", 7) == "d:f:0000000007"


def test_load_drops_undecodable_records(tmp_path):
    backend = MemoryBackend()
    cache = ResultCache(backend=backend)
    call = GroundCall("d", "f", (1,))
    cache.put(call, ("x",), now_ms=1.0)
    backend.put("cim", "d:f:garbage", b"not json")
    fresh = ResultCache(backend=backend)
    assert fresh.load_from_backend() == 1
    assert backend.get("cim", "d:f:garbage") is None  # dropped, not replayed
    assert fresh.peek(call) is not None


# -- cost-aware eviction -------------------------------------------------------


def _call(name: str) -> GroundCall:
    return GroundCall("d", name, (1,))


class TestCostAwareEviction:
    def test_cheap_entries_evicted_before_expensive(self):
        costs = {"cheap": 1.0, "mid": 50.0, "dear": 500.0}
        cache = ResultCache(
            max_entries=2,
            policy=POLICY_COST,
            evictor=CostFrequencyEvictor(lambda call: costs[call.function]),
        )
        cache.put(_call("dear"), ("aaaa",), now_ms=0.0)
        cache.put(_call("cheap"), ("bbbb",), now_ms=1.0)
        cache.put(_call("mid"), ("cccc",), now_ms=2.0)  # forces one eviction
        assert cache.peek(_call("cheap")) is None  # lowest cost density left first
        assert cache.peek(_call("dear")) is not None
        assert cache.peek(_call("mid")) is not None

    def test_rarely_hit_entries_evicted_first(self):
        cache = ResultCache(
            max_entries=2,
            policy=POLICY_COST,
            evictor=CostFrequencyEvictor(lambda call: 10.0),  # equal costs
        )
        hot, cold = _call("hot"), _call("cold")
        cache.put(hot, ("aaaa",), now_ms=0.0)
        cache.put(cold, ("bbbb",), now_ms=1.0)
        for _ in range(5):
            cache.get(hot, now_ms=2.0)
        cache.put(_call("new"), ("cccc",), now_ms=3.0)
        assert cache.peek(cold) is None  # same cost, fewer hits: out first
        assert cache.peek(hot) is not None

    def test_byte_budget_keeps_high_value_entries(self):
        costs = {"dear": 1000.0, "cheap": 1.0}
        budget = value_bytes("x" * 64) * 3
        cache = ResultCache(
            max_bytes=budget,
            policy=POLICY_COST,
            evictor=CostFrequencyEvictor(
                lambda call: costs.get(call.function, 1.0)
            ),
        )
        cache.put(_call("dear"), ("x" * 64,), now_ms=0.0)
        for i in range(6):
            cache.put(GroundCall("d", "cheap", (i,)), ("x" * 64,), now_ms=float(i))
        assert cache.peek(_call("dear")) is not None
        assert cache.total_bytes <= budget

    def test_unpriceable_calls_fall_back_to_default(self):
        evictor = CostFrequencyEvictor(lambda call: None, default_cost_ms=2.0)
        assert evictor.recompute_cost_ms(_call("f")) == 2.0
        evictor = CostFrequencyEvictor(lambda call: -5.0, default_cost_ms=2.0)
        assert evictor.recompute_cost_ms(_call("f")) == 2.0

    def test_mediator_cache_max_bytes_enables_cost_policy(self, tmp_path):
        mediator = Mediator(storage="memory", cache_max_bytes=4096)
        assert mediator.cim.cache.policy == POLICY_COST
        assert mediator.cim.cache.max_bytes == 4096
        assert mediator.cim.cache.evictor is not None
        mediator.close()


# -- warm restart through the mediator -----------------------------------------


@pytest.mark.parametrize("kind", ["sqlite", "sharded"])
def test_mediator_warm_restart(kind, tmp_path):
    spec = (
        f"sqlite:{tmp_path / 'warm.db'}"
        if kind == "sqlite"
        else f"sharded:{tmp_path / 'warm'}"
    )
    cold = build_rope_testbed(storage=spec)
    cold_result = cold.query("?- actors(A).", use_cim=True)
    cold.query("?- actors(A).", use_cim=True)  # second pass caches the plan
    cold_calls = cold.cim.stats.real_calls
    assert cold_calls > 0
    cold.close()

    warm = build_rope_testbed(storage=spec, warm_start=True)
    assert warm.metrics.value("storage.warm_start.entries_loaded") > 0
    assert warm.metrics.value("storage.warm_start.cim_entries") > 0
    assert warm.metrics.value("storage.warm_start.dcsm_observations") > 0
    assert warm.metrics.value("storage.warm_start.plans_adopted") >= 1
    warm_result = warm.query("?- actors(A).", use_cim=True)
    # answer parity with the cold run, served without any real call
    assert sorted(warm_result.execution.answers) == sorted(
        cold_result.execution.answers
    )
    assert warm.cim.stats.real_calls == 0
    assert warm.cim.cache.stats.exact_hits > 0
    assert warm.metrics.value("planner.plan_cache_hits") >= 1
    warm.close()


def test_warm_restart_drops_plans_for_changed_program(tmp_path):
    spec = f"sqlite:{tmp_path / 'warm.db'}"
    cold = build_rope_testbed(storage=spec)
    cold.query("?- actors(A).", use_cim=True)
    cold.query("?- actors(A).", use_cim=True)
    cold.close()

    warm = build_rope_testbed(storage=spec, warm_start=True)
    # changing the program after adoption invalidates via the epoch; a
    # *different* program at load time must never adopt at all
    assert warm.metrics.value("storage.warm_start.plans_adopted") >= 1
    warm.close()

    other = Mediator(storage=spec, warm_start=True)
    other.load_program("other(X) :- in(X, d:f('a')).")
    assert other.metrics.value("storage.warm_start.plans_adopted") == 0
    assert len(other.plan_cache) == 0
    other.flush_storage()
    assert other.metrics.value("storage.warm_start.plans_dropped") >= 1
    other.close()


def test_env_variable_selects_backend(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_STORAGE", "sqlite")
    monkeypatch.setenv("REPRO_STORAGE_PATH", str(tmp_path))
    first = Mediator()
    second = Mediator()
    assert first.storage.kind == "sqlite"
    assert str(first.storage.path).startswith(str(tmp_path))
    # each mediator gets its own file: no cross-talk between instances
    assert first.storage.path != second.storage.path
    first.close()
    second.close()


def test_explicit_backend_instance_is_used(tmp_path):
    backend = MemoryBackend()
    mediator = Mediator(storage=backend)
    assert mediator.storage is backend
    assert backend.metrics is mediator.metrics
    mediator.close()


def test_close_detaches_and_keeps_mediator_usable(m1_mediator):
    m1_mediator.query("?- m(A, C).")
    m1_mediator.close()
    result = m1_mediator.query("?- m(A, C).")  # still answers after close
    assert len(result.execution.answers) == 3
    m1_mediator.close()  # idempotent


# -- persistence staleness regressions -----------------------------------------


def _plan_entry(epoch: int, version: int, value_dependent: bool = False) -> CachedPlan:
    return CachedPlan(
        template=None,
        vector=None,
        params=(),
        sources=frozenset(),
        epoch=epoch,
        dcsm_version=version,
        value_dependent=value_dependent,
    )


def test_save_plan_cache_skips_lazily_invalidated_entries():
    """Plan-cache invalidation is lazy: entries from an older epoch (or
    DCSM version) sit in memory until looked up.  The snapshot must not
    persist them under the current fingerprint — that would resurrect a
    stale plan on warm restart."""
    backend = MemoryBackend()
    cache = PlanCache()
    cache.put("live", _plan_entry(2, 7))
    cache.put("stale-epoch", _plan_entry(1, 7))
    cache.put("stale-version", _plan_entry(2, 6))
    # markers carry no prices: epoch applies, the DCSM version does not
    cache.put("stale-marker", _plan_entry(1, 7, value_dependent=True))
    cache.put("live-marker", _plan_entry(2, 3, value_dependent=True))
    written = save_plan_cache(cache, backend, "fp", epoch=2, dcsm_version=7)
    assert written == 2
    records = load_plan_records(backend)
    assert sorted(record.key for record in records) == ["live", "live-marker"]
    assert all(record.fingerprint == "fp" for record in records)


def test_flush_never_persists_plans_predating_a_program_change(tmp_path):
    spec = f"sqlite:{tmp_path / 'stale.db'}"
    cold = build_rope_testbed(storage=spec)
    cold.query("?- actors(A).", use_cim=True)
    cold.query("?- actors(A).", use_cim=True)  # second pass caches the plan
    assert len(cold.plan_cache) >= 1
    # bump the plan epoch *after* the plan was cached; lazy invalidation
    # leaves the now-stale entry sitting in the cache
    cold.add_rule("extra(X) :- actors(X).")
    assert len(cold.plan_cache) >= 1
    cold.close()

    warm = build_rope_testbed(storage=spec, warm_start=True)
    # reach the exact program the cold session flushed under: a plan
    # planned without the extra rule must not have been persisted as if
    # it had been planned with it
    warm.add_rule("extra(X) :- actors(X).")
    assert warm.metrics.value("storage.warm_start.plans_adopted") == 0
    assert len(warm.plan_cache) == 0
    warm.close()


def _obs(i: int) -> Observation:
    return Observation(
        call=GroundCall("d", "f", (i,)),
        vector=CostVector(t_first_ms=1.0, t_all_ms=5.0, cardinality=1.0),
        record_time_ms=float(i),
        complete=True,
    )


def test_cold_dcsm_session_appends_after_existing_records():
    """A session mirroring into a non-empty store without a warm load
    must continue the per-bucket sequence, not overwrite from zero —
    otherwise a later warm start reads an interleaved mix of stale and
    fresh observations."""
    backend = MemoryBackend()
    first = CostVectorDatabase()
    first.attach_backend(backend)
    for i in range(3):
        first.record(_obs(i))
    assert len(list(backend.scan_prefix("dcsm", ""))) == 3

    second = CostVectorDatabase()  # cold: no load_from_backend
    second.attach_backend(backend)
    second.record(_obs(99))
    keys = [key for key, __ in backend.scan_prefix("dcsm", "")]
    assert len(keys) == 4  # appended, nothing overwritten
    assert keys[-1] == observation_key("d", "f", 3)

    third = CostVectorDatabase()
    third.attach_backend(backend)
    assert third.load_from_backend() == 4
    recorded = third.observations("d", "f")
    assert [obs.call.args[0] for obs in recorded] == [0, 1, 2, 99]


def test_load_evictions_delete_backend_records():
    """Entries evicted while restoring into a smaller cache must leave
    the backend too, or dead records are re-read and re-evicted on every
    warm start forever."""
    backend = MemoryBackend()
    seeder = ResultCache(backend=backend)
    for i in range(6):
        seeder.put(GroundCall("d", "f", (i,)), (f"v{i}",), now_ms=float(i))
    assert len(list(backend.scan_prefix("cim", ""))) == 6

    small = ResultCache(max_entries=2, backend=backend)
    assert small.load_from_backend() == 6
    assert len(small) == 2
    survivors = {key for key, __ in backend.scan_prefix("cim", "")}
    assert survivors == {call_key(entry.call) for entry in small}


def test_restored_entries_expire_under_the_new_clock():
    """The simulated clock restarts near zero: a restored stored_at_ms
    from late in the previous session must be clamped, or TTL expiry
    (now - stored_at >= ttl) never fires."""
    backend = MemoryBackend()
    old = ResultCache(ttl_ms=100.0, backend=backend)
    call = GroundCall("d", "f", (1,))
    old.put(call, ("x",), now_ms=5000.0)  # late in the previous session

    fresh = ResultCache(ttl_ms=100.0, backend=backend)
    assert fresh.load_from_backend(now_ms=0.0) == 1
    assert fresh.get(call, now_ms=50.0) is not None  # young under the new clock
    assert fresh.get(call, now_ms=150.0) is None  # expired under the new clock


def test_default_storage_root_is_private_and_user_owned(monkeypatch, tmp_path):
    """Plan records are pickled, so the default storage location is a
    trust boundary: never the shared temp dir itself, always a 0700
    directory owned by the current user."""
    monkeypatch.delenv("REPRO_STORAGE_PATH", raising=False)
    monkeypatch.setattr(tempfile, "gettempdir", lambda: str(tmp_path))
    root = Path(_default_storage_root())
    assert root != tmp_path  # a private subdirectory, not the shared dir
    assert root.is_dir()
    assert stat.S_IMODE(os.stat(root).st_mode) == 0o700
    if hasattr(os, "getuid"):
        assert os.stat(root).st_uid == os.getuid()

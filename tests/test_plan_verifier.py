"""Independent plan verifier: property-test oracle against the Rewriter,
hand-broken plans, and the executor's ``verify_plans`` debug assertion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.verifier import assert_plan_verified, verify_plan
from repro.core.mediator import Mediator
from repro.core.model import DomainCall, InAtom
from repro.core.parser import parse_program, parse_query
from repro.core.plans import CallStep, Plan
from repro.core.rewriter import Rewriter
from repro.errors import PlanVerificationError
from repro.workloads.datasets import ROPE_PROGRAM, build_rope_testbed
from repro.workloads.generators import generate_workload

M1 = parse_program(
    """
    m(A, C) :- p(A, B) & q(B, C).
    p(A, B) :- in(Ans, d1:p_ff()), =($Ans.1, A), =($Ans.2, B).
    p(A, B) :- in(A, d1:p_fb(B)).
    p(A, B) :- in(X, d1:p_bb(A, B)).
    q(B, C) :- in(Ans, d2:q_ff()), =($Ans.1, B), =($Ans.2, C).
    q(B, C) :- in(C, d2:q_bf(B)).
    """
)

ROPE_QUERIES = (
    "?- query1(1, 240, Object, Size).",
    "?- query2(1, 240, Object, Frames, Actor).",
    "?- query3(1, 240, Object, Actor).",
    "?- query4(1, 240, Object, Actor).",
    "?- actors(Actor).",
)


def all_plans(program, query_text):
    return Rewriter(program).plans(parse_query(query_text))


class TestRewriterPlansVerify:
    """Every plan the rewriter emits must replay cleanly — the verifier
    is an independent oracle for the rewriter's ordering logic."""

    @pytest.mark.parametrize(
        "query", ["?- m(a, C).", "?- m(A, C).", "?- m(A, c)."]
    )
    def test_paper_example_plans(self, query):
        plans = all_plans(M1, query)
        assert plans
        for plan in plans:
            assert verify_plan(plan) == ()

    @pytest.mark.parametrize("query", ROPE_QUERIES)
    def test_rope_plans(self, query):
        program = parse_program(ROPE_PROGRAM)
        plans = all_plans(program, query)
        assert plans
        mediator = build_rope_testbed()
        for plan in plans:
            assert verify_plan(plan, registry=mediator.registry) == ()

    @settings(max_examples=25, deadline=None)
    @given(
        layers=st.integers(1, 3),
        width=st.integers(1, 3),
        calls_per_leaf=st.integers(1, 3),
        seed=st.integers(0, 10_000),
    )
    def test_generated_workload_plans(self, layers, width, calls_per_leaf, seed):
        workload = generate_workload(
            layers=layers,
            width=width,
            calls_per_leaf=calls_per_leaf,
            seed=seed,
        )
        program = parse_program(workload.program_text)
        rewriter = Rewriter(program)
        for query_text in workload.queries:
            for plan in rewriter.plans(parse_query(query_text)):
                assert verify_plan(plan) == ()


def rope_plan():
    program = parse_program(ROPE_PROGRAM)
    plans = all_plans(program, "?- query2(1, 240, Object, Frames, Actor).")
    # pick a plan with at least two call steps so reordering breaks it
    plan = next(p for p in plans if len(p.call_steps()) >= 2)
    assert verify_plan(plan) == ()
    return plan


class TestBrokenPlans:
    def test_reordered_steps_fail_ground_check(self):
        plan = rope_plan()
        broken = Plan(tuple(reversed(plan.steps)), plan.answer_vars)
        diagnostics = verify_plan(broken)
        assert diagnostics
        assert any(d.code in ("MED160", "MED161") for d in diagnostics)

    def test_dropped_step_leaves_answer_var_unbound(self):
        plan = rope_plan()
        broken = Plan(plan.steps[:1], plan.answer_vars)
        diagnostics = verify_plan(broken)
        assert any(d.code == "MED162" for d in diagnostics)
        unbound_msg = next(d for d in diagnostics if d.code == "MED162")
        assert "not bound at the end" in unbound_msg.message

    def test_bogus_domain_flagged_against_registry(self):
        plan = rope_plan()
        mediator = build_rope_testbed()
        first = plan.call_steps()[0]
        bogus_atom = InAtom(
            first.atom.output,
            DomainCall("ghost", first.atom.call.function, first.atom.call.args),
        )
        steps = tuple(
            CallStep(bogus_atom) if step is first else step
            for step in plan.steps
        )
        broken = Plan(steps, plan.answer_vars)
        diagnostics = verify_plan(broken, registry=mediator.registry)
        assert any(d.code == "MED163" for d in diagnostics)

    def test_prebound_vars_allow_parameterised_plans(self):
        plan = rope_plan()
        # stripping the first step normally breaks the chain; pre-binding
        # its outputs (a parameterised execution) restores verifiability
        first = plan.steps[0]
        rest = Plan(plan.steps[1:], plan.answer_vars)
        assert verify_plan(rest) != ()
        prebound = frozenset(first.atom.output.variables()) | frozenset(
            v for arg in first.atom.call.args for v in arg.variables()
        )
        assert verify_plan(rest, bound_vars=prebound) == ()

    def test_assert_plan_verified_raises_with_all_messages(self):
        plan = rope_plan()
        broken = Plan(plan.steps[:1], plan.answer_vars)
        with pytest.raises(PlanVerificationError) as excinfo:
            assert_plan_verified(broken)
        assert "MED162" in str(excinfo.value)


class TestExecutorAssertion:
    def test_mediator_queries_pass_with_verification_on(self):
        mediator = build_rope_testbed(verify_plans=True)
        answers = mediator.query("?- actors(Actor).").answers
        assert answers  # normal execution is unaffected

    def test_executor_rejects_broken_plan(self):
        mediator = build_rope_testbed(verify_plans=True)
        plan = rope_plan()
        broken = Plan(plan.steps[:1], plan.answer_vars)
        with pytest.raises(PlanVerificationError):
            mediator.executor.run(broken)

    def test_verification_off_by_default(self):
        mediator = build_rope_testbed()
        assert mediator.executor.verify_plans is False


class TestGeneratedWorkloadEndToEnd:
    def test_workload_executes_and_analyzes_clean(self):
        workload = generate_workload(layers=3, width=2, seed=7)
        mediator = Mediator(verify_plans=True)
        mediator.register_domain(workload.domain)
        mediator.load_program(workload.program_text)
        assert mediator.analyze(queries=workload.queries).clean
        for query_text in workload.queries:
            assert mediator.query(query_text).answers

    def test_workload_validates_sizes(self):
        with pytest.raises(ValueError):
            generate_workload(layers=0)

"""Sub-plan result cache: canonicalization, the four invalidation paths,
byte-budget eviction, warm restart over every storage backend, and
property-based answer parity against the cache-off engine.

Most tests construct the mediator with ``record_statistics=False``:
with live statistics every search can re-summarize the DCSM, and the
version stamp then (conservatively, by design) invalidates the subplan
tier between queries — see docs/CACHING.md.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mediator import Mediator
from repro.core.model import DomainCall, InAtom
from repro.core.plans import CallStep
from repro.core.subplan import canonicalize_prefix, replay_cost_ms, subplan_cuts
from repro.core.terms import Constant, Variable
from repro.storage.memory import MemoryBackend
from repro.workloads.generators import generate_shared_prefix_workload

pytestmark = pytest.mark.subplan


def build_mediator(**kwargs):
    workload = generate_shared_prefix_workload()
    options = dict(record_statistics=False, use_subplan_cache=True)
    options.update(kwargs)
    mediator = Mediator(**options)
    mediator.register_domain(workload.domain)
    mediator.load_program(workload.program_text)
    return mediator, workload


def call_step(domain, function, arg, out):
    return CallStep(InAtom(out, DomainCall(domain, function, (arg,))))


# -- canonicalization -----------------------------------------------------------


def test_cuts_require_a_prior_call():
    a, b, c = Variable("A"), Variable("B"), Variable("C")
    steps = [
        call_step("d", "f", Constant("x"), a),
        call_step("d", "g", a, b),
        call_step("d", "h", b, c),
    ]
    assert subplan_cuts(steps) == (1, 2)
    assert subplan_cuts(steps[:1]) == ()
    assert subplan_cuts([]) == ()


def test_canonical_key_ignores_variable_spelling():
    """Prefixes from different queries (different variable names, same
    shape, same constants) must share a key — cross-query collision."""
    first = [
        call_step("d", "f", Constant("x"), Variable("M")),
        call_step("d", "g", Variable("M"), Variable("Out")),
    ]
    second = [
        call_step("d", "f", Constant("x"), Variable("P")),
        call_step("d", "g", Variable("P"), Variable("Q")),
    ]
    lhs = canonicalize_prefix(first)
    rhs = canonicalize_prefix(second)
    assert lhs.key == rhs.key
    assert lhs.sources == {("d", "f"), ("d", "g")}


def test_canonical_key_keeps_constant_values():
    """Same shape, different constant values: same pattern (a shared
    template), different keys (different materialized results)."""
    lhs = canonicalize_prefix([call_step("d", "f", Constant("x"), Variable("M"))])
    rhs = canonicalize_prefix([call_step("d", "f", Constant("y"), Variable("M"))])
    assert lhs.pattern == rhs.pattern
    assert lhs.key != rhs.key
    assert lhs.constants == ("x",)
    assert rhs.constants == ("y",)


def test_replay_cost_scales_with_rows():
    assert replay_cost_ms(0, 2.0) == pytest.approx(2.0)
    assert replay_cost_ms(10, 2.0) == pytest.approx(4.0)


# -- cross-query sharing through the executor -----------------------------------


def test_second_query_replays_the_shared_prefix():
    mediator, workload = build_mediator()
    mediator.query(workload.queries[0])
    cold_calls = sum(workload.call_counts.values())
    mediator.query(workload.queries[1])
    tail_calls = sum(workload.call_counts.values()) - cold_calls
    # the whole five-call chain is replayed from cache; only q1's private
    # tail dials a source (once per chain row)
    assert tail_calls == 2
    assert mediator.subplan_cache.stats.hits >= 1
    assert workload.call_counts["share:s0"] == 1
    mediator.close()


def test_different_root_constant_misses():
    mediator, workload = build_mediator()
    mediator.query(workload.queries[0])
    hits_before = mediator.subplan_cache.stats.hits
    s0_before = workload.call_counts["share:s0"]
    mediator.query("?- q0('other', Out).")
    assert mediator.subplan_cache.stats.hits == hits_before
    assert workload.call_counts["share:s0"] == s0_before + 1
    mediator.close()


# -- the four invalidation paths ------------------------------------------------


def warm_cache(mediator, workload):
    for query in workload.queries:
        mediator.query(query)
    assert mediator.subplan_cache.entry_count > 0


def test_epoch_invalidation_on_program_change():
    mediator, workload = build_mediator()
    warm_cache(mediator, workload)
    mediator.load_program("extra(A, M) :- shared(A, M).")
    s0_before = workload.call_counts["share:s0"]
    mediator.query(workload.queries[0])
    assert mediator.subplan_cache.stats.invalidations["epoch"] >= 1
    # the prefix really was recomputed, then re-cached under the new epoch
    assert workload.call_counts["share:s0"] == s0_before + 1
    assert mediator.metrics.value("subplan.invalidations.epoch") >= 1
    mediator.close()


def test_source_invalidation_is_prefix_precise():
    mediator, workload = build_mediator()
    warm_cache(mediator, workload)
    before = mediator.subplan_cache.entry_count
    assert before == 5  # cuts before s1..s4 and the tail: [s0] .. [s0..s4]
    mediator.notify_source_changed("share", "s2")
    # the three prefixes containing s2 die; [s0] and [s0,s1] survive
    assert mediator.subplan_cache.stats.invalidations["source"] == 3
    assert mediator.subplan_cache.entry_count == before - 3
    mediator.notify_source_changed("share")  # whole domain
    assert mediator.subplan_cache.entry_count == 0
    mediator.close()


def test_dcsm_version_invalidation():
    mediator, workload = build_mediator()
    warm_cache(mediator, workload)
    mediator.dcsm.summarize()  # unconditional version bump
    s0_before = workload.call_counts["share:s0"]
    mediator.query(workload.queries[0])
    assert mediator.subplan_cache.stats.invalidations["dcsm_version"] >= 1
    assert workload.call_counts["share:s0"] == s0_before + 1
    mediator.close()


def test_ttl_invalidation():
    mediator, workload = build_mediator(subplan_ttl_ms=10_000.0)
    warm_cache(mediator, workload)
    s0_before = workload.call_counts["share:s0"]
    mediator.query(workload.queries[0])  # well inside the TTL: replayed
    assert workload.call_counts["share:s0"] == s0_before
    mediator.clock.advance(20_000.0)
    mediator.query(workload.queries[0])
    assert mediator.subplan_cache.stats.invalidations["ttl"] >= 1
    assert workload.call_counts["share:s0"] == s0_before + 1
    mediator.close()


# -- byte budget and eviction ---------------------------------------------------


def test_byte_budget_evicts_and_bounds_occupancy():
    mediator, workload = build_mediator(subplan_max_bytes=300)
    warm_cache(mediator, workload)
    cache = mediator.subplan_cache
    assert cache.max_bytes == 300
    assert cache.total_bytes <= 300
    assert cache.stats.invalidations["eviction"] >= 1
    # answers stay correct regardless of what got evicted
    result = mediator.query(workload.queries[0])
    assert result.cardinality == 2
    mediator.close()


def test_subplan_budget_defaults_to_cache_max_bytes():
    mediator, _ = build_mediator(cache_max_bytes=4096)
    assert mediator.subplan_cache.max_bytes == 4096
    assert mediator.subplan_cache.evictor is not None
    mediator.close()


# -- warm restart across the backend matrix -------------------------------------


def _storage_spec(kind, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    if kind == "sqlite":
        return f"sqlite:{tmp_path / 'subplan.db'}"
    return f"sharded:{tmp_path / 'subplan'}"


@pytest.mark.parametrize("kind", ["memory", "sqlite", "sharded"])
def test_warm_restart_adopts_subplans(kind, tmp_path):
    spec = _storage_spec(kind, tmp_path)
    cold, cold_workload = build_mediator(storage=spec)
    warm_cache(cold, cold_workload)
    persisted = cold.subplan_cache.entry_count
    cold.flush_storage()
    if kind != "memory":  # closing the memory backend drops the table
        cold.close()

    warm, warm_workload = build_mediator(storage=spec, warm_start=True)
    assert warm.metrics.value("storage.warm_start.subplans_adopted") == persisted
    assert warm.subplan_cache.entry_count == persisted
    result = warm.query(warm_workload.queries[0])
    # the adopted prefix serves the chain; only the tail dials sources
    assert result.cardinality == 2
    assert sum(
        count
        for name, count in warm_workload.call_counts.items()
        if name.startswith("share:s")
    ) == 0
    assert warm_workload.call_counts["share:t0"] == 2
    warm.close()


@pytest.mark.parametrize("kind", ["memory", "sqlite", "sharded"])
def test_warm_restart_drops_subplans_for_changed_program(kind, tmp_path):
    spec = _storage_spec(kind, tmp_path)
    cold, cold_workload = build_mediator(storage=spec)
    warm_cache(cold, cold_workload)
    cold.flush_storage()
    if kind != "memory":
        cold.close()

    other = Mediator(
        record_statistics=False, use_subplan_cache=True,
        storage=spec, warm_start=True,
    )
    other.load_program("other(X, Y) :- in(Y, d:f(X)).")
    assert other.metrics.value("storage.warm_start.subplans_adopted") == 0
    assert other.subplan_cache.entry_count == 0
    other.flush_storage()
    assert other.metrics.value("storage.warm_start.subplans_dropped") >= 1
    other.close()


# -- property-based answer parity -----------------------------------------------


workload_shapes = st.tuples(
    st.integers(min_value=1, max_value=3),  # queries
    st.integers(min_value=2, max_value=4),  # prefix_depth
    st.integers(min_value=1, max_value=2),  # fanout
    st.integers(min_value=0, max_value=5),  # seed
)


def _answer_multiset(mediator, queries, passes=2):
    answers = Counter()
    for _ in range(passes):
        for query in queries:
            answers.update(mediator.query(query).answers)
    return answers


@settings(max_examples=12, deadline=None)
@given(shape=workload_shapes)
def test_cached_answers_match_uncached(shape):
    queries, depth, fanout, seed = shape
    workload = generate_shared_prefix_workload(
        queries=queries, prefix_depth=depth, fanout=fanout, seed=seed
    )
    baseline = Mediator(record_statistics=False, verify_plans=True)
    cached = Mediator(
        record_statistics=False, use_subplan_cache=True, verify_plans=True
    )
    for mediator in (baseline, cached):
        mediator.register_domain(
            generate_shared_prefix_workload(
                queries=queries, prefix_depth=depth, fanout=fanout, seed=seed
            ).domain
        )
        mediator.load_program(workload.program_text)
    assert _answer_multiset(baseline, workload.queries) == _answer_multiset(
        cached, workload.queries
    )
    baseline.close()
    cached.close()


@settings(max_examples=8, deadline=None)
@given(shape=workload_shapes)
def test_cached_answers_match_uncached_parallel(shape):
    queries, depth, fanout, seed = shape
    workload = generate_shared_prefix_workload(
        queries=queries, prefix_depth=depth, fanout=fanout, seed=seed
    )
    baseline = Mediator(record_statistics=False, verify_plans=True)
    cached = Mediator(
        record_statistics=False, use_subplan_cache=True, verify_plans=True
    )
    cached.set_jobs(4)
    for mediator in (baseline, cached):
        mediator.register_domain(
            generate_shared_prefix_workload(
                queries=queries, prefix_depth=depth, fanout=fanout, seed=seed
            ).domain
        )
        mediator.load_program(workload.program_text)
    assert _answer_multiset(baseline, workload.queries) == _answer_multiset(
        cached, workload.queries
    )
    baseline.close()
    cached.close()

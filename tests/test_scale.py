"""Scale sanity tests: the engine must stay usable on thousands of rows
and the planner must stay bounded on wide rule bodies."""

import time

from repro.core.mediator import Mediator
from repro.core.model import GroundCall
from repro.core.parser import parse_program, parse_query
from repro.core.rewriter import Rewriter, RewriterConfig
from repro.domains.base import simple_domain
from repro.domains.relational.engine import RelationalEngine


class TestRelationalScale:
    def test_large_join_through_mediator(self):
        engine = RelationalEngine("rel")
        engine.create_table(
            "orders",
            ["order_id", "customer"],
            [(i, f"c{i % 100:03d}") for i in range(2000)],
            index_on=["customer"],
        )
        engine.create_table(
            "customers",
            ["customer", "region"],
            [(f"c{i:03d}", f"r{i % 5}") for i in range(100)],
            index_on=["customer"],
        )
        mediator = Mediator()
        mediator.register_domain(engine)
        mediator.load_program(
            """
            region_orders(Region, OrderId) :-
                in(C, rel:equal('customers', 'region', Region)) &
                =(C.customer, Cust) &
                in(O, rel:equal('orders', 'customer', Cust)) &
                =(O.order_id, OrderId).
            """
        )
        started = time.perf_counter()
        result = mediator.query("?- region_orders('r0', O).")
        elapsed = time.perf_counter() - started
        assert result.cardinality == 400  # 20 customers x 20 orders
        assert elapsed < 5.0  # real seconds, generous CI headroom

    def test_index_probe_on_ten_thousand_rows(self):
        engine = RelationalEngine("rel")
        engine.create_table(
            "big", ["k", "v"], [(i % 500, i) for i in range(10_000)],
            index_on=["k"],
        )
        result = engine.execute(GroundCall("rel", "equal", ("big", "k", 123)))
        assert result.cardinality == 20
        # simulated cost reflects the probe, not a scan
        scan = engine.execute(GroundCall("rel", "select_ge", ("big", "v", 0)))
        assert result.t_all_ms < scan.t_all_ms / 50


class TestPlannerBounds:
    def test_wide_body_is_capped_not_exploded(self):
        """8 independent source calls have 8! = 40320 orderings; the
        rewriter must respect max_plans and return promptly."""
        calls = " & ".join(f"in(X{i}, d:f{i}())" for i in range(8))
        program = parse_program(f"wide({', '.join(f'X{i}' for i in range(8))}) :- {calls}.")
        config = RewriterConfig(max_plans=32)
        rewriter = Rewriter(program, config)
        started = time.perf_counter()
        plans = rewriter.plans(parse_query(f"?- wide({', '.join(f'X{i}' for i in range(8))})."))
        elapsed = time.perf_counter() - started
        assert len(plans) == 32
        assert elapsed < 2.0

    def test_deep_chain_plans_quickly(self):
        """A 10-call dependency chain has exactly one ordering."""
        body = ["in(X0, d:f())"]
        for i in range(1, 10):
            body.append(f"in(X{i}, d:g(X{i - 1}))")
        program = parse_program(f"chain(X9) :- {' & '.join(body)}.")
        plans = Rewriter(program).plans(parse_query("?- chain(X9)."))
        assert len(plans) == 1
        assert plans[0].num_calls() == 10

    def test_executor_handles_deep_chain(self):
        mediator = Mediator(init_overhead_ms=0.0, display_cost_ms=0.0)
        mediator.register_domain(
            simple_domain("d", {"f": lambda: [0], "g": lambda x: [x + 1]})
        )
        body = ["in(X0, d:f())"]
        for i in range(1, 10):
            body.append(f"in(X{i}, d:g(X{i - 1}))")
        mediator.load_program(f"chain(X9) :- {' & '.join(body)}.")
        result = mediator.query("?- chain(X9).")
        assert result.answers == ((9,),)

    def test_many_answer_fanout(self):
        """100 x 100 nested loop = 10k evaluations without recursion
        errors or quadratic blowup beyond the expected work."""
        mediator = Mediator(init_overhead_ms=0.0, display_cost_ms=0.0)
        mediator.register_domain(
            simple_domain(
                "d",
                {
                    "xs": lambda: list(range(100)),
                    "ys": lambda x: list(range(100)),
                },
            )
        )
        mediator.load_program("grid(X, Y) :- in(X, d:xs()) & in(Y, d:ys(X)).")
        started = time.perf_counter()
        result = mediator.query("?- grid(X, Y).")
        elapsed = time.perf_counter() - started
        assert result.cardinality == 10_000
        assert elapsed < 5.0


class TestCacheScale:
    def test_thousands_of_cache_entries(self):
        from repro.cim.cache import ResultCache

        cache = ResultCache()
        for i in range(5000):
            cache.put(GroundCall("d", "f", (i,)), (i, i + 1))
        assert len(cache) == 5000
        started = time.perf_counter()
        for i in range(0, 5000, 7):
            assert cache.get(GroundCall("d", "f", (i,))) is not None
        elapsed = time.perf_counter() - started
        assert elapsed < 0.5

    def test_dcsm_with_many_observations(self):
        from repro.dcsm.module import DCSM
        from repro.dcsm.patterns import BOUND, CallPattern
        from repro.domains.base import CallResult

        dcsm = DCSM()
        for i in range(3000):
            dcsm.record(
                CallResult(
                    call=GroundCall("d", "f", (i % 50,)),
                    answers=(1,),
                    t_first_ms=1.0,
                    t_all_ms=2.0,
                )
            )
        started = time.perf_counter()
        for i in range(50):
            dcsm.cost(CallPattern("d", "f", (i,)))
        dcsm.cost(CallPattern("d", "f", (BOUND,)))
        elapsed = time.perf_counter() - started
        assert elapsed < 1.0

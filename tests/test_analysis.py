"""Static analyzer tests: diagnostics core, adornment feasibility,
interval satisfiability, dead rules, reachability, and invariant lint."""

import json

import pytest

from repro.analysis import (
    CODES,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
    analyze_program,
    bindingflow_pass,
    compute_bindingflow,
    lint_invariants,
    make_report,
    relevance_pass,
    unsatisfiable_reason,
)
from repro.analysis.bindingflow import TOP
from repro.analysis.diagnostics import SCHEMA_VERSION
from repro.analysis.passes import (
    dead_rule_pass,
    feasibility_pass,
    query_pass,
    reachability_pass,
    structure_pass,
)
from repro.core.adornment import adornment_of, call_adornment
from repro.core.mediator import Mediator
from repro.core.model import Comparison, InAtom
from repro.core.parser import parse_invariant, parse_program, parse_query
from repro.core.terms import AttrPath, Constant, Variable
from repro.domains.base import simple_domain
from repro.domains.registry import DomainRegistry
from repro.workloads.datasets import build_rope_testbed


@pytest.fixture
def registry() -> DomainRegistry:
    return DomainRegistry(
        [
            simple_domain(
                "d",
                {
                    "f": lambda x: [x],
                    "g": lambda: [1],
                    "g2": lambda x: [x],
                },
            )
        ]
    )


def codes_of(diagnostics) -> set:
    return {diagnostic.code for diagnostic in diagnostics}


# ---------------------------------------------------------------------------
# Diagnostics core
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("MED999", SEVERITY_ERROR, "nope")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("MED101", "fatal", "nope")

    def test_str_includes_code_rule_and_hint(self):
        diagnostic = Diagnostic(
            "MED101",
            SEVERITY_ERROR,
            "boom",
            rule="p(X) :- q(X).",
            hint="fix it",
        )
        rendered = str(diagnostic)
        assert "MED101" in rendered
        assert "p(X) :- q(X)." in rendered
        assert "hint: fix it" in rendered

    def test_to_dict_round_trips_through_json(self):
        diagnostic = Diagnostic("MED130", SEVERITY_ERROR, "dead")
        payload = json.loads(json.dumps(diagnostic.to_dict()))
        assert payload["code"] == "MED130"
        assert payload["severity"] == SEVERITY_ERROR
        assert payload["title"] == CODES["MED130"]

    def test_every_code_has_a_title(self):
        for code, title in CODES.items():
            assert code.startswith("MED")
            assert title


class TestAnalysisReport:
    def test_errors_sort_before_warnings(self):
        report = make_report(
            [
                Diagnostic("MED131", SEVERITY_WARNING, "later"),
                Diagnostic("MED101", SEVERITY_ERROR, "first"),
            ]
        )
        assert [d.code for d in report.diagnostics] == ["MED101", "MED131"]

    def test_exit_codes(self):
        assert make_report([]).exit_code == 0
        warn = make_report([Diagnostic("MED131", SEVERITY_WARNING, "w")])
        assert warn.exit_code == 1
        assert warn.ok and not warn.clean
        err = make_report([Diagnostic("MED101", SEVERITY_ERROR, "e")])
        assert err.exit_code == 2
        assert not err.ok

    def test_render_text_counts(self):
        report = make_report(
            [
                Diagnostic("MED101", SEVERITY_ERROR, "e"),
                Diagnostic("MED131", SEVERITY_WARNING, "w"),
            ]
        )
        assert "1 error(s), 1 warning(s)." in report.render_text()
        assert "no issues found." in make_report([]).render_text()

    def test_render_json_is_parseable(self):
        report = make_report([Diagnostic("MED101", SEVERITY_ERROR, "e")])
        payload = json.loads(report.render_json())
        assert payload["errors"] == 1
        assert payload["exit_code"] == 2
        assert payload["diagnostics"][0]["code"] == "MED101"

    def test_by_code(self):
        report = make_report(
            [
                Diagnostic("MED131", SEVERITY_WARNING, "one"),
                Diagnostic("MED131", SEVERITY_WARNING, "two"),
            ]
        )
        assert len(report.by_code("MED131")) == 2
        assert report.by_code("MED101") == ()


# ---------------------------------------------------------------------------
# Structure pass (MED101-105)
# ---------------------------------------------------------------------------


class TestStructurePass:
    def test_unknown_domain(self, registry):
        program = parse_program("p(X) :- in(X, mystery:f(1)).")
        diagnostics = structure_pass(program, registry)
        assert codes_of(diagnostics) == {"MED101"}

    def test_unknown_function(self, registry):
        program = parse_program("p(X) :- in(X, d:zap(1)).")
        diagnostics = structure_pass(program, registry)
        assert codes_of(diagnostics) == {"MED102"}

    def test_arity_mismatch(self, registry):
        program = parse_program("p(X) :- in(X, d:f(1, 2)).")
        diagnostics = structure_pass(program, registry)
        assert codes_of(diagnostics) == {"MED103"}

    def test_undefined_predicate(self, registry):
        program = parse_program("p(X) :- q(X).")
        diagnostics = structure_pass(program, registry)
        assert codes_of(diagnostics) == {"MED104"}
        assert "q/1" in diagnostics[0].message

    def test_recursion(self, registry):
        program = parse_program("p(X) :- p(X).")
        diagnostics = structure_pass(program, registry)
        assert "MED105" in codes_of(diagnostics)

    def test_opaque_endpoint_skips_function_checks(self):
        """Endpoints without a ``functions`` table (like the CIM) resolve
        the domain but cannot be checked further."""

        class Opaque:
            name = "cim"

            def execute(self, call):
                raise NotImplementedError

        registry = DomainRegistry([Opaque()])
        program = parse_program("p(X) :- in(X, cim:anything(1, 2, 3)).")
        assert structure_pass(program, registry) == []


# ---------------------------------------------------------------------------
# Adornment feasibility (MED120-122, MED125)
# ---------------------------------------------------------------------------


class TestFeasibilityPass:
    def test_never_ground_call_names_variables(self, registry):
        program = parse_program("p(X) :- in(X, d:f(Y)).")
        diagnostics = feasibility_pass(program)
        assert codes_of(diagnostics) == {"MED120"}
        assert "Y" in diagnostics[0].message
        assert "never bound" in diagnostics[0].message

    def test_clean_chain_has_no_diagnostics(self, registry):
        program = parse_program("p(X, Y) :- in(X, d:g()) & in(Y, d:f(X)).")
        assert feasibility_pass(program) == []

    def test_stuck_comparison(self, registry):
        program = parse_program("p(X) :- in(X, d:g()) & Y < X.")
        diagnostics = feasibility_pass(program)
        assert codes_of(diagnostics) == {"MED122"}
        assert "Y" in diagnostics[0].message

    def test_old_heuristic_false_negative_now_caught(self, registry):
        """The retired validator assumed every IDB body variable bindable,
        so ``base(Y) :- in(Z, d:g2(Y))`` looked fine and ``p`` looked
        orderable.  Unfolding ``base`` the way the rewriter does shows Y
        is an *input* no rule can produce."""
        program = parse_program(
            """
            base(Y) :- in(Z, d:g2(Y)).
            p(X) :- base(Y) & in(X, d:f(Y)).
            """
        )
        diagnostics = feasibility_pass(program)
        codes = codes_of(diagnostics)
        assert "MED120" in codes  # d:g2(Y) stuck inside base/1
        assert "MED121" in codes  # base(Y) subgoal stuck inside p/1

    def test_head_variables_still_assumed_bindable(self, registry):
        """A call whose inputs are head variables is fine: the caller can
        bind them (the rewriter checks per-query via query_pass)."""
        program = parse_program("p(X, Y) :- in(Y, d:f(X)).")
        assert feasibility_pass(program) == []


class TestQueryPass:
    def test_query_with_free_input_flagged(self, registry):
        program = parse_program("p(X, Y) :- in(Y, d:f(X)).")
        query = parse_query("?- p(X, Y).")
        diagnostics = query_pass(program, [query])
        codes = codes_of(diagnostics)
        assert "MED121" in codes
        assert "MED125" in codes
        patterns = {
            d.literal for d in diagnostics if d.code == "MED125"
        }
        assert "p/2^ff" in patterns

    def test_query_with_bound_input_clean(self, registry):
        program = parse_program("p(X, Y) :- in(Y, d:f(X)).")
        query = parse_query("?- p(1, Y).")
        assert query_pass(program, [query]) == []


# ---------------------------------------------------------------------------
# Interval satisfiability (MED130) and reachability (MED131)
# ---------------------------------------------------------------------------


def comparisons(text: str) -> list:
    program = parse_program(f"p(X, Y, Z) :- in(X, d:g()) & {text}.")
    return [
        literal
        for literal in program.rules[0].body
        if isinstance(literal, Comparison)
    ]


class TestUnsatisfiableReason:
    @pytest.mark.parametrize(
        "text",
        [
            "X < 3 & X > 5",
            "X = 3 & X > 5",
            "X = Y & X < 3 & Y > 5",
            "X < Y & Y < X",
            "X = 3 & X != 3",
            "X = 'a' & X = 'b'",
            "1 > 2",
            "X < Y & Y < 3 & X > 5",
            "X < 3 & X >= 3",
            "X != Y & X = Y",
            "X >= 'b' & X <= 'a'",
        ],
    )
    def test_unsatisfiable(self, text):
        assert unsatisfiable_reason(comparisons(text)) is not None

    @pytest.mark.parametrize(
        "text",
        [
            "X < 3 & X < 5",
            "X <= Y & Y <= X",
            "1 < 2",
            "X <= 3 & X >= 3",
            "X > 'a' & X < 1",  # mixed types: soundly skipped
            "X != 3",
            "X < 3",
        ],
    )
    def test_satisfiable_or_unknown(self, text):
        assert unsatisfiable_reason(comparisons(text)) is None


class TestDeadRulePass:
    def test_contradictory_chain_is_an_error(self, registry):
        program = parse_program(
            "p(X) :- in(X, d:g()) & X < 3 & X > 5."
        )
        diagnostics = dead_rule_pass(program)
        assert codes_of(diagnostics) == {"MED130"}
        assert diagnostics[0].severity == SEVERITY_ERROR

    def test_satisfiable_rule_not_flagged(self, registry):
        program = parse_program("p(X) :- in(X, d:g()) & X < 3.")
        assert dead_rule_pass(program) == []


class TestReachabilityPass:
    PROGRAM = """
        top(X) :- mid(X).
        mid(X) :- in(X, d:g()).
        orphan(X) :- in(X, d:g()).
    """

    def test_unreachable_from_queries(self):
        program = parse_program(self.PROGRAM)
        diagnostics = reachability_pass(
            program, [parse_query("?- top(X).")]
        )
        assert codes_of(diagnostics) == {"MED131"}
        assert any("orphan/1" in d.message for d in diagnostics)
        assert not any("mid/1" in d.message for d in diagnostics)

    def test_without_queries_roots_are_unreferenced_heads(self):
        program = parse_program(self.PROGRAM)
        assert reachability_pass(program) == []

    def test_unreferenced_by_anything(self):
        program = parse_program(
            """
            top(X) :- mid(X).
            mid(X) :- in(X, d:g()).
            shadow(X) :- mid(X).
            """
        )
        # without queries both top and shadow are roots -> clean
        assert reachability_pass(program) == []
        diagnostics = reachability_pass(program, [parse_query("?- top(X).")])
        assert any("shadow/1" in d.message for d in diagnostics)


# ---------------------------------------------------------------------------
# Invariant lint (MED140-147)
# ---------------------------------------------------------------------------


class TestInvariantLint:
    def test_unknown_domain_on_either_side(self, registry):
        invariant = parse_invariant("ghost:f(X) >= d:f(X).")
        assert "MED140" in codes_of(lint_invariants([invariant], registry=registry))
        invariant = parse_invariant("d:f(X) >= ghost:f(X).")
        assert "MED140" in codes_of(lint_invariants([invariant], registry=registry))

    def test_unknown_function_and_arity(self, registry):
        bad_fn = parse_invariant("d:zap(X) >= d:f(X).")
        assert "MED141" in codes_of(lint_invariants([bad_fn], registry=registry))
        bad_arity = parse_invariant("d:f(X, Y) >= d:f(X).")
        assert "MED142" in codes_of(lint_invariants([bad_arity], registry=registry))

    def test_self_rewrite(self):
        invariant = parse_invariant("d:f(X) >= d:f(X).")
        assert "MED143" in codes_of(lint_invariants([invariant]))

    def test_cycle_across_distinct_calls(self):
        pair = [
            parse_invariant("d:f(X) >= d:g2(X)."),
            parse_invariant("d:g2(X) >= d:f(X)."),
        ]
        diagnostics = lint_invariants(pair)
        assert sum(1 for d in diagnostics if d.code == "MED144") == 2

    def test_containment_self_edge_is_not_a_cycle(self):
        """The paper's §4 pattern — same call with wider arguments — must
        not be flagged as a loop."""
        invariant = parse_invariant(
            "A1 <= A2 & B2 <= B1 => d:span(A1, B1) >= d:span(A2, B2)."
        )
        assert lint_invariants([invariant]) == []

    def test_unsatisfiable_condition(self):
        invariant = parse_invariant("A < 1 & A > 2 => d:f(A) >= d:f(1).")
        diagnostics = lint_invariants([invariant])
        assert "MED145" in codes_of(diagnostics)

    def test_unsafe_invariant(self):
        """The parser refuses unsafe invariants, so build one directly
        (it could arrive through the API) and check the linter reports it
        instead of raising."""
        from repro.core.model import (
            INVARIANT_SUPSET,
            DomainCall,
            Invariant,
        )
        from repro.core.terms import Constant

        invariant = Invariant(
            condition=(Comparison("<", Variable("C"), Constant(1)),),
            left=DomainCall("d", "f", (Variable("A"),)),
            relation=INVARIANT_SUPSET,
            right=DomainCall("d", "f", (Constant(1),)),
        )
        diagnostics = lint_invariants([invariant])
        assert "MED147" in codes_of(diagnostics)

    def test_unmatched_left_side(self, registry):
        program = parse_program("p(X) :- in(X, d:g()).")
        invariant = parse_invariant("d:f('never') >= d:g().")
        diagnostics = lint_invariants(
            [invariant], program=program, registry=registry
        )
        assert "MED146" in codes_of(diagnostics)

    def test_matched_left_side_clean(self, registry):
        program = parse_program("p(X) :- in(X, d:f('never')).")
        invariant = parse_invariant("d:f('never') >= d:g().")
        diagnostics = lint_invariants(
            [invariant], program=program, registry=registry
        )
        assert "MED146" not in codes_of(diagnostics)

    def test_empty_program_skips_match_check(self, registry):
        invariant = parse_invariant("d:f('never') >= d:g().")
        diagnostics = lint_invariants(
            [invariant], program=parse_program(""), registry=registry
        )
        assert "MED146" not in codes_of(diagnostics)


# ---------------------------------------------------------------------------
# analyze_program / Mediator.analyze
# ---------------------------------------------------------------------------


class TestAnalyzeProgram:
    def test_rope_testbed_is_clean(self):
        mediator = build_rope_testbed()
        report = mediator.analyze()
        assert report.clean
        assert report.exit_code == 0

    def test_recursive_program_skips_downstream_passes(self, registry):
        program = parse_program("p(X) :- p(X).")
        report = analyze_program(program, registry=registry)
        assert codes_of(report.diagnostics) == {"MED105"}

    def test_mediator_analyze_with_string_queries(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"g": lambda: [1]}))
        mediator.load_program(
            """
            p(X) :- in(X, d:g()).
            orphan(X) :- in(X, d:g()).
            """
        )
        report = mediator.analyze(queries=["?- p(X)."])
        assert "MED131" in codes_of(report.diagnostics)

    def test_metrics_recorded(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"g": lambda: [1]}))
        mediator.load_program("p(X) :- in(X, d:f(Y)).")
        report = mediator.analyze()
        assert not report.clean
        metrics = mediator.metrics
        assert metrics.value("analysis.runs") == 1.0
        assert metrics.value("analysis.code.MED102") >= 1.0
        assert metrics.value("analysis.errors") >= 1.0

    def test_validate_program_shim_agrees_with_analyze(self):
        """core.validation now fronts the analyzer: every error surfaces
        as an Issue with the same message."""
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"g": lambda: [1]}))
        mediator.load_program("p(X) :- q(X).")
        issues = mediator.validate_program()
        report = mediator.analyze()
        assert [i.message for i in issues if i.severity == SEVERITY_ERROR] == [
            d.message for d in report.errors
        ]


# ---------------------------------------------------------------------------
# Binding flow (MED150) and relevance (MED151-155)
# ---------------------------------------------------------------------------


class TestBindingFlowPass:
    def test_never_bindable_argument(self):
        """helper's first argument is an input: no call site binds it and
        no defining rule computes it, so nothing can ever supply it."""
        program = parse_program(
            """
            helper(Obj, F) :- in(F, d:f(Obj)).
            caller(F) :- helper(Obj, F).
            """
        )
        diagnostics = bindingflow_pass(program)
        meds = [d for d in diagnostics if d.code == "MED150"]
        assert any("helper/2" in d.message for d in meds)

    def test_bound_call_site_is_clean(self):
        program = parse_program(
            """
            helper(Obj, F) :- in(F, d:f(Obj)).
            caller(F) :- helper(1, F).
            """
        )
        assert bindingflow_pass(program) == []

    def test_query_goals_count_as_call_sites(self):
        program = parse_program("p(X, Y) :- in(Y, d:f(X)).")
        query = parse_query("?- p(1, Y).")
        assert bindingflow_pass(program, [query]) == []

    def test_constant_flow_and_produced_positions(self):
        program = parse_program(
            """
            t('a', S) :- in(S, d:g()).
            t('b', S) :- in(S, d:g()).
            top(S) :- t('a', S).
            """
        )
        facts = compute_bindingflow(program)
        key = ("t", 2)
        assert facts.constant_flow[(key, 0)] == {Constant("a")}
        assert facts.constant_flow[(key, 1)] is TOP
        assert 1 in facts.produced_positions[key]
        assert len(facts.call_sites[key]) == 1


class TestRelevancePass:
    def test_unreached_specialization(self):
        program = parse_program(
            """
            t('a', S) :- in(S, d:g()).
            t('b', S) :- in(S, d:g()).
            top(S) :- t('a', S).
            """
        )
        meds = [d for d in relevance_pass(program) if d.code == "MED151"]
        assert len(meds) == 1
        assert "'b'" in meds[0].message

    def test_duplicate_comparison(self):
        program = parse_program("p(X) :- in(X, d:g()) & X > 1 & X > 1.")
        codes = codes_of(relevance_pass(program))
        assert "MED152" in codes

    def test_statically_true_comparison(self):
        program = parse_program("p(X) :- in(X, d:g()) & 1 < 2.")
        codes = codes_of(relevance_pass(program))
        assert "MED155" in codes

    def test_filtered_dead_rule_reported(self):
        program = parse_program("p(X) :- in(X, d:g()) & X < 1 & X > 2.")
        meds = [d for d in relevance_pass(program) if d.code == "MED153"]
        assert len(meds) == 1
        assert "unsatisfiable" in meds[0].message

    def test_filtered_infeasible_rule_reported(self):
        program = parse_program("p(X) :- in(X, d:f(Y)).")
        meds = [d for d in relevance_pass(program) if d.code == "MED153"]
        assert len(meds) == 1
        assert "no subgoal ordering" in meds[0].message

    def test_unused_domain_call_output(self):
        program = parse_program("p(X) :- in(X, d:g()) & in(Y, d:g()).")
        meds = [d for d in relevance_pass(program) if d.code == "MED154"]
        assert len(meds) == 1
        assert "Y" in meds[0].message

    def test_clean_program_has_no_relevance_diagnostics(self):
        program = parse_program("p(X, Y) :- in(X, d:g()) & in(Y, d:f(X)).")
        assert relevance_pass(program) == []


class TestDeterministicReports:
    def test_report_sorted_by_code_then_location(self):
        a = Diagnostic("MED131", SEVERITY_WARNING, "m", rule="z")
        b = Diagnostic("MED101", SEVERITY_ERROR, "m", rule="b")
        c = Diagnostic("MED101", SEVERITY_ERROR, "m", rule="a")
        report = make_report([a, b, c])
        assert [d.rule for d in report.diagnostics] == ["a", "b", "z"]
        assert [d.code for d in report.diagnostics] == [
            "MED101",
            "MED101",
            "MED131",
        ]

    def test_schema_version_in_json(self):
        report = make_report(
            [Diagnostic("MED101", SEVERITY_ERROR, "boom")]
        )
        payload = json.loads(report.render_json())
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_pass_timings_recorded(self):
        mediator = Mediator()
        mediator.register_domain(simple_domain("d", {"g": lambda: [1]}))
        mediator.load_program("p(X) :- in(X, d:g()).")
        mediator.analyze()
        for name in ("bindingflow", "relevance", "structure"):
            histogram = mediator.metrics.histogram(f"analysis.pass_ms.{name}")
            assert histogram.count >= 1


# ---------------------------------------------------------------------------
# Adornment helpers with AttrPath outputs (satellite)
# ---------------------------------------------------------------------------


class TestAdornmentWithAttrPaths:
    def test_adornment_of_attrpath_follows_base(self):
        T = Variable("T")
        path = AttrPath(T, ("name",))
        assert adornment_of((path,), frozenset()) == "f"
        assert adornment_of((path,), frozenset({T})) == "b"

    def test_call_adornment_attrpath_output(self):
        program = parse_program("p(A) :- in(T, d:f(A)) & =(T.name, A).")
        atom = next(
            literal
            for literal in program.rules[0].body
            if isinstance(literal, InAtom)
        )
        A, T = Variable("A"), Variable("T")
        assert call_adornment(atom, frozenset({A})) == "bf"
        assert call_adornment(atom, frozenset({A, T})) == "bb"

    def test_call_adornment_mixed_args(self):
        program = parse_program(
            "p(A, B) :- in(X, d:h('c', A, B.k))."
        )
        atom = program.rules[0].body[0]
        A, B = Variable("A"), Variable("B")
        assert call_adornment(atom, frozenset({A})) == "bbff"
        assert call_adornment(atom, frozenset({A, B})) == "bbbf"

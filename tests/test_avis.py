"""AVIS substrate tests: interval model, source functions, cost shape."""

import pytest

from repro.core.model import GroundCall
from repro.domains.avis.model import Appearance, Video
from repro.domains.avis.store import AvisDomain, build_video
from repro.errors import BadCallError


class TestAppearance:
    def test_valid_interval(self):
        span = Appearance(4, 47)
        assert span.length == 44

    def test_bad_intervals(self):
        with pytest.raises(BadCallError):
            Appearance(0, 5)
        with pytest.raises(BadCallError):
            Appearance(10, 5)

    def test_intersection(self):
        span = Appearance(10, 20)
        assert span.intersects(20, 30)
        assert span.intersects(1, 10)
        assert span.intersects(15, 16)
        assert not span.intersects(21, 30)
        assert not span.intersects(1, 9)


class TestVideo:
    def test_add_object_validates_bounds(self):
        video = Video("v", num_frames=100)
        with pytest.raises(BadCallError):
            video.add_object("x", [(90, 120)])

    def test_objects_between(self):
        video = Video("v", num_frames=100)
        video.add_object("early", [(1, 10)])
        video.add_object("late", [(60, 90)])
        video.add_object("both", [(5, 8), (70, 80)])
        assert set(video.objects_between(1, 20)) == {"early", "both"}
        assert set(video.objects_between(65, 75)) == {"late", "both"}

    def test_multiple_intervals_accumulate(self):
        video = Video("v", num_frames=100)
        video.add_object("x", [(1, 5)])
        video.add_object("x", [(50, 60)])
        assert len(video.frames_of("x")) == 2

    def test_size(self):
        video = Video("v", num_frames=10, bytes_per_frame=100)
        assert video.size_bytes == 1000


class TestAvisDomain:
    @pytest.fixture
    def avis(self, small_avis: AvisDomain) -> AvisDomain:
        return small_avis

    def call(self, avis, fn, *args):
        return avis.execute(GroundCall("video", fn, args))

    def test_video_size(self, avis):
        result = self.call(avis, "video_size", "rope")
        assert result.answers == (240 * 4096,)

    def test_frames_to_objects(self, avis):
        result = self.call(avis, "frames_to_objects", "rope", 4, 47)
        assert set(result.answers) == {"brandon", "phillip", "rupert", "rope"}

    def test_cost_scales_with_interval_not_output(self, avis):
        narrow = self.call(avis, "frames_to_objects", "rope", 4, 20)
        wide = self.call(avis, "frames_to_objects", "rope", 4, 200)
        # same order of answers but much more frame scanning
        assert wide.t_all_ms > 3 * narrow.t_all_ms

    def test_empty_interval(self, avis):
        result = self.call(avis, "frames_to_objects", "rope", 50, 40)
        assert result.answers == ()

    def test_interval_clipped_to_video(self, avis):
        clipped = self.call(avis, "frames_to_objects", "rope", 1, 240)
        huge = self.call(avis, "frames_to_objects", "rope", 1, 100000)
        assert set(clipped.answers) == set(huge.answers)
        # clipping also bounds the cost
        assert huge.t_all_ms == pytest.approx(clipped.t_all_ms, rel=0.01)

    def test_non_integer_bounds_rejected(self, avis):
        with pytest.raises(BadCallError):
            self.call(avis, "frames_to_objects", "rope", "a", 47)

    def test_object_to_frames(self, avis):
        result = self.call(avis, "object_to_frames", "rope", "rope")
        assert len(result.answers) == 1
        row = result.answers[0]
        assert (row.first, row.last) == (4, 60)

    def test_object_to_frames_unknown_object(self, avis):
        result = self.call(avis, "object_to_frames", "rope", "ghost")
        assert result.answers == ()

    def test_actors_in(self, avis):
        result = self.call(avis, "actors_in", "rope")
        assert set(result.answers) == {"brandon", "phillip", "rupert", "rope", "gun"}

    def test_videos_catalog(self, avis):
        result = self.call(avis, "videos", *())
        assert result.answers[0].name == "rope"

    def test_unknown_video(self, avis):
        with pytest.raises(BadCallError):
            self.call(avis, "video_size", "vertigo")

    def test_duplicate_video_rejected(self, avis):
        with pytest.raises(BadCallError):
            avis.add_video(build_video("rope", 10, []))

"""The planner's static pre-rewrite (repro.analysis.relevance).

Covers the answer-preservation property the magic-set-style filter must
satisfy — filtered and unfiltered mediators compute identical answer
multisets over generated workloads, on the sequential and the parallel
engine, with the independent plan verifier as oracle — plus the targeted
facts: dead/infeasible rules leave the search space (not just the lint
report), redundant comparisons are dropped, a fully-filtered predicate
fails planning cleanly, and the plan-cache fingerprint separates
filtered from unfiltered plan templates.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import static_filter
from repro.analysis.verifier import verify_plan
from repro.core.mediator import Mediator
from repro.core.parser import parse_program, parse_query
from repro.core.rewriter import RewriterConfig
from repro.domains.base import simple_domain
from repro.errors import PlanningError
from repro.workloads.generators import generate_star_workload, generate_workload


def _mediator_for(workload, enable_filter: bool, jobs: int = 1) -> Mediator:
    config = RewriterConfig(static_filter=enable_filter)
    mediator = Mediator(rewriter_config=config)
    mediator.register_domain(workload.domain)
    mediator.load_program(workload.program_text)
    if jobs > 1:
        mediator.set_jobs(jobs)
    return mediator


def _answers(mediator: Mediator, text: str) -> Counter:
    result = mediator.query(text)
    # oracle: whatever the (possibly pre-rewritten) planner chose must
    # still be an executable, fully-binding plan
    assert verify_plan(result.chosen, registry=mediator.registry) == ()
    return Counter(result.answers)


# ---------------------------------------------------------------------------
# Answer-multiset parity (the rewrite-correctness property)
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(
    layers=st.integers(1, 2),
    width=st.integers(1, 2),
    calls_per_leaf=st.integers(1, 2),
    fanout=st.integers(1, 2),
    seed=st.integers(0, 3),
    jobs=st.sampled_from([1, 4]),
)
def test_chain_workload_answer_parity(
    layers, width, calls_per_leaf, fanout, seed, jobs
):
    """Filtered ≡ unfiltered answer multisets on chain workloads, with a
    dead union branch and a redundant-literal branch grafted on so the
    filter has real work to do."""
    workload = generate_workload(
        layers=layers,
        width=width,
        calls_per_leaf=calls_per_leaf,
        fanout=fanout,
        seed=seed,
    )
    top = layers - 1
    augmented = workload.program_text + (
        # redundant literals: a duplicate filter and a ground-true one
        f"\nfilt(A, B) :- p{top}_0(A, B) & B != 'x' & B != 'x' & 1 < 2."
        # statically dead union branch (unsatisfiable string interval)
        f"\nfilt(A, B) :- p{top}_0(A, B) & A < 'a' & A > 'z'."
    )
    workload = dataclasses.replace(workload, program_text=augmented)
    queries = list(workload.queries) + ["?- filt('s0', Out)."]

    filtered = _mediator_for(workload, enable_filter=True, jobs=jobs)
    unfiltered = _mediator_for(workload, enable_filter=False, jobs=jobs)
    assert filtered.rewriter.rules_filtered == 1
    assert filtered.rewriter.literals_filtered == 2
    for text in queries:
        assert _answers(filtered, text) == _answers(unfiltered, text)


@settings(max_examples=8, deadline=None)
@given(
    calls=st.integers(2, 6),
    seed=st.integers(0, 3),
    jobs=st.sampled_from([1, 4]),
)
def test_star_workload_answer_parity(calls, seed, jobs):
    """Filtered ≡ unfiltered answer multisets on star workloads (where
    the guided search also takes the rank-tail completion path)."""
    workload = generate_star_workload(calls=calls, seed=seed)
    filtered = _mediator_for(workload, enable_filter=True, jobs=jobs)
    unfiltered = _mediator_for(workload, enable_filter=False, jobs=jobs)
    for text in workload.queries:
        assert _answers(filtered, text) == _answers(unfiltered, text)


# ---------------------------------------------------------------------------
# Targeted static_filter facts
# ---------------------------------------------------------------------------


def _filter_mediator(program: str) -> Mediator:
    mediator = Mediator()
    mediator.register_domain(
        simple_domain("d", {"f": lambda x: [x], "g": lambda: [1, 2]})
    )
    mediator.load_program(program)
    return mediator


class TestStaticFilter:
    def test_dead_rule_leaves_the_search_space(self):
        """MED130-dead rules are pruned from planning, not just reported:
        no candidate plan's origin mentions the dead union branch."""
        mediator = _filter_mediator(
            """
            p(X) :- in(X, d:g()).
            p(X) :- in(X, d:g()) & X < 1 & X > 2.
            """
        )
        assert mediator.rewriter.rules_filtered == 1
        plans = mediator.rewriter.plans(parse_query("?- p(X)."))
        assert all("X < 1" not in plan.origin for plan in plans)
        assert Counter(mediator.query("?- p(X).").answers) == Counter(
            {(1,): 1, (2,): 1}
        )

    def test_infeasible_rule_leaves_the_search_space(self):
        """A rule stuck under the most generous seeding can never run —
        the MED131-style dead branch disappears before enumeration."""
        mediator = _filter_mediator(
            """
            p(X) :- in(X, d:g()).
            p(X) :- in(X, d:f(Y)).
            """
        )
        assert mediator.rewriter.rules_filtered == 1
        plans = mediator.rewriter.plans(parse_query("?- p(X)."))
        assert all("d:f" not in plan.origin for plan in plans)

    def test_redundant_comparisons_dropped(self):
        mediator = _filter_mediator(
            "p(X) :- in(X, d:g()) & X != 9 & X != 9 & 1 < 2."
        )
        assert mediator.rewriter.literals_filtered == 2
        result = mediator.query("?- p(X).")
        assert Counter(result.answers) == Counter({(1,): 1, (2,): 1})
        assert verify_plan(result.chosen, registry=mediator.registry) == ()

    def test_duplicate_in_atoms_survive(self):
        """Membership re-execution changes answer multiplicities, so the
        filter must never treat duplicate in() atoms as redundant."""
        program = parse_program("p(X) :- in(X, d:g()) & in(X, d:g()).")
        result = static_filter(program)
        assert not result.changed
        assert len(result.program.rules[0].body) == 2

    def test_fully_filtered_predicate_fails_planning(self):
        mediator = _filter_mediator("p(X) :- in(X, d:g()) & X < 1 & X > 2.")
        with pytest.raises(PlanningError):
            mediator.query("?- p(X).")

    def test_search_stats_report_filtering(self):
        mediator = _filter_mediator(
            """
            p(X) :- in(X, d:g()).
            p(X) :- in(X, d:g()) & X < 1 & X > 2.
            """
        )
        result = mediator.rewriter.search(
            parse_query("?- p(X)."), mediator.cost_estimator
        )
        assert result.stats.rules_filtered == 1

    def test_filter_off_keeps_the_program_intact(self):
        config = RewriterConfig(static_filter=False)
        mediator = Mediator(rewriter_config=config)
        mediator.register_domain(simple_domain("d", {"g": lambda: [1, 2]}))
        mediator.load_program(
            """
            p(X) :- in(X, d:g()).
            p(X) :- in(X, d:g()) & X < 1 & X > 2.
            """
        )
        assert mediator.rewriter.rules_filtered == 0
        # the dead branch still plans (and yields nothing at run time)
        assert Counter(mediator.query("?- p(X).").answers) == Counter(
            {(1,): 1, (2,): 1}
        )


class TestFingerprintSeparation:
    def test_filter_knob_changes_the_program_fingerprint(self):
        """Warm-restart safety: a plan template planned against the
        filtered program must not be adopted by a mediator planning the
        unfiltered one (and vice versa)."""
        program = "p(X) :- in(X, d:g())."
        on = Mediator(rewriter_config=RewriterConfig(static_filter=True))
        off = Mediator(rewriter_config=RewriterConfig(static_filter=False))
        for mediator in (on, off):
            mediator.register_domain(simple_domain("d", {"g": lambda: [1]}))
            mediator.load_program(program)
        assert on._program_fingerprint() != off._program_fingerprint()

    def test_same_config_same_fingerprint(self):
        program = "p(X) :- in(X, d:g())."
        first = Mediator()
        second = Mediator()
        for mediator in (first, second):
            mediator.register_domain(simple_domain("d", {"g": lambda: [1]}))
            mediator.load_program(program)
        assert first._program_fingerprint() == second._program_fingerprint()

"""Tests for the spatial, terrain, and flat-file substrates."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import GroundCall
from repro.domains.flatfile import FlatFileDomain
from repro.domains.spatial.domain import SpatialDomain
from repro.domains.spatial.index import GridIndex, Point
from repro.domains.terrain.domain import TerrainDomain
from repro.domains.terrain.grid import TerrainGrid
from repro.errors import BadCallError


# ---------------------------------------------------------------------------
# Spatial
# ---------------------------------------------------------------------------


class TestGridIndex:
    def test_range_query_exact(self):
        points = [Point("a", 0, 0), Point("b", 3, 4), Point("c", 10, 10)]
        index = GridIndex(points, cell_size=5)
        result = index.range_query(0, 0, 5.0)
        assert {p.name for p in result.points} == {"a", "b"}

    def test_boundary_inclusive(self):
        index = GridIndex([Point("edge", 3, 4)], cell_size=5)
        assert index.range_query(0, 0, 5.0).points  # dist == 5 exactly

    def test_zero_radius(self):
        index = GridIndex([Point("origin", 1, 1)], cell_size=5)
        assert index.range_query(1, 1, 0.0).points
        assert not index.range_query(2, 1, 0.0).points

    def test_negative_radius_rejected(self):
        index = GridIndex([], cell_size=5)
        with pytest.raises(BadCallError):
            index.range_query(0, 0, -1)

    def test_bounds_and_diameter(self):
        index = GridIndex([Point("a", 0, 0), Point("b", 100, 100)])
        assert index.bounds == (0, 0, 100, 100)
        assert index.diameter == pytest.approx(math.hypot(100, 100))

    def test_empty_index(self):
        index = GridIndex([])
        assert index.bounds == (0.0, 0.0, 0.0, 0.0)
        assert len(index) == 0

    def test_work_grows_with_radius(self):
        rng = random.Random(1)
        points = [
            Point(f"p{i}", rng.uniform(0, 100), rng.uniform(0, 100))
            for i in range(200)
        ]
        index = GridIndex(points, cell_size=10)
        small = index.range_query(50, 50, 5)
        large = index.range_query(50, 50, 60)
        assert large.cells_visited > small.cells_visited


@settings(max_examples=50, deadline=None)
@given(
    points=st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False),
            st.floats(0, 100, allow_nan=False),
        ),
        max_size=40,
    ),
    center=st.tuples(
        st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)
    ),
    radius=st.floats(0, 150, allow_nan=False),
)
def test_range_query_matches_brute_force(points, center, radius):
    """Property: the grid index returns exactly the brute-force answer."""
    named = [Point(f"p{i}", x, y) for i, (x, y) in enumerate(points)]
    index = GridIndex(named, cell_size=7.0)
    expected = {
        p.name for p in named if p.distance_to(center[0], center[1]) <= radius
    }
    got = {p.name for p in index.range_query(center[0], center[1], radius).points}
    assert got == expected


class TestSpatialDomain:
    def test_range_function(self):
        domain = SpatialDomain()
        domain.add_file("pts", [Point("a", 1, 1), Point("b", 50, 50)])
        result = domain.execute(GroundCall("spatial", "range", ("pts", 0.0, 0.0, 10.0)))
        assert [row.name for row in result.answers] == ["a"]

    def test_extent_function(self):
        domain = SpatialDomain()
        domain.add_file("pts", [Point("a", 0, 0), Point("b", 30, 40)])
        result = domain.execute(GroundCall("spatial", "extent", ("pts",)))
        row = result.answers[0]
        assert row.diameter == pytest.approx(50.0)

    def test_unknown_file(self):
        domain = SpatialDomain()
        with pytest.raises(BadCallError):
            domain.execute(GroundCall("spatial", "range", ("x", 0.0, 0.0, 1.0)))

    def test_cost_grows_with_radius(self):
        domain = SpatialDomain()
        rng = random.Random(3)
        domain.add_file(
            "pts",
            [Point(f"p{i}", rng.uniform(0, 100), rng.uniform(0, 100)) for i in range(300)],
        )
        small = domain.execute(GroundCall("spatial", "range", ("pts", 50.0, 50.0, 5.0)))
        large = domain.execute(GroundCall("spatial", "range", ("pts", 50.0, 50.0, 200.0)))
        assert large.t_all_ms > small.t_all_ms


# ---------------------------------------------------------------------------
# Terrain
# ---------------------------------------------------------------------------


class TestTerrainGrid:
    def test_straight_route(self):
        grid = TerrainGrid(10, 10)
        result = grid.find_route((0, 0), (3, 0))
        assert result.waypoints is not None
        assert result.cost == pytest.approx(3.0)
        assert result.waypoints[0] == (0, 0)
        assert result.waypoints[-1] == (3, 0)

    def test_route_respects_obstacles(self):
        grid = TerrainGrid(10, 10)
        grid.add_obstacle_rect(5, 0, 5, 8)  # wall with gap at y=9
        result = grid.find_route((0, 0), (9, 0))
        assert result.waypoints is not None
        assert result.cost > 9.0  # forced detour
        assert all(grid.cost_at(x, y) is not None for x, y in result.waypoints)

    def test_unreachable(self):
        grid = TerrainGrid(10, 10)
        grid.add_obstacle_rect(5, 0, 5, 9)  # full wall
        result = grid.find_route((0, 0), (9, 0))
        assert result.waypoints is None

    def test_weighted_cells_avoided(self):
        grid = TerrainGrid(5, 5)
        grid.set_cost(1, 0, 100.0)  # expensive direct cell
        result = grid.find_route((0, 0), (2, 0))
        assert result.cost < 100.0  # went around

    def test_route_cost_is_optimal_on_small_grids(self):
        """Cross-check Dijkstra against exhaustive path search."""
        grid = TerrainGrid(4, 4)
        grid.set_cost(1, 1, 5.0)
        grid.set_cost(2, 2, None)
        best = grid.find_route((0, 0), (3, 3))

        # brute force with simple BFS over cost (uniform enumeration)
        def brute() -> float:
            frontier = [((0, 0), 0.0, {(0, 0)})]
            best_cost = float("inf")
            while frontier:
                node, cost, seen = frontier.pop()
                if cost >= best_cost:
                    continue
                if node == (3, 3):
                    best_cost = cost
                    continue
                for nx, ny, step_cost in grid.neighbors(*node):
                    if (nx, ny) not in seen:
                        frontier.append(((nx, ny), cost + step_cost, seen | {(nx, ny)}))
            return best_cost

        assert best.cost == pytest.approx(brute())

    def test_place_management(self):
        grid = TerrainGrid(5, 5)
        grid.add_place("hq", 0, 0)
        assert grid.place("hq") == (0, 0)
        with pytest.raises(BadCallError):
            grid.place("nowhere")

    def test_place_on_obstacle_rejected(self):
        grid = TerrainGrid(5, 5)
        grid.set_cost(2, 2, None)
        with pytest.raises(BadCallError):
            grid.add_place("bad", 2, 2)


class TestTerrainDomain:
    @pytest.fixture
    def domain(self) -> TerrainDomain:
        grid = TerrainGrid(16, 16)
        grid.add_place("alpha", 0, 0)
        grid.add_place("omega", 15, 15)
        return TerrainDomain(grid=grid)

    def test_findrte(self, domain):
        result = domain.execute(GroundCall("terraindb", "findrte", ("alpha", "omega")))
        assert result.cardinality == 1
        row = result.answers[0]
        assert row.cost == pytest.approx(30.0)
        assert row.hops == 31

    def test_distance(self, domain):
        result = domain.execute(GroundCall("terraindb", "distance", ("alpha", "omega")))
        assert result.answers == (30.0,)

    def test_places(self, domain):
        result = domain.execute(GroundCall("terraindb", "places", ()))
        assert set(result.answers) == {"alpha", "omega"}

    def test_unreachable_returns_empty(self):
        grid = TerrainGrid(8, 8)
        grid.add_place("a", 0, 0)
        grid.add_place("b", 7, 7)
        grid.add_obstacle_rect(4, 0, 4, 7)
        domain = TerrainDomain(grid=grid)
        result = domain.execute(GroundCall("terraindb", "findrte", ("a", "b")))
        assert result.answers == ()
        assert result.t_all_ms > domain.base_cost_ms  # the search still cost


# ---------------------------------------------------------------------------
# Flat files
# ---------------------------------------------------------------------------


class TestFlatFile:
    @pytest.fixture
    def domain(self) -> FlatFileDomain:
        domain = FlatFileDomain()
        domain.add_file(
            "inv",
            ["depot|h-22 fuel|40", "fob|ammo|10", "camp|h-22 fuel|5", "hq|maps|1"],
        )
        return domain

    def test_lines(self, domain):
        result = domain.execute(GroundCall("flatfile", "lines", ("inv",)))
        assert result.cardinality == 4

    def test_grep(self, domain):
        result = domain.execute(GroundCall("flatfile", "grep", ("inv", "fuel")))
        assert result.cardinality == 2

    def test_grep_no_match(self, domain):
        result = domain.execute(GroundCall("flatfile", "grep", ("inv", "zzz")))
        assert result.answers == ()

    def test_field_eq(self, domain):
        result = domain.execute(
            GroundCall("flatfile", "field_eq", ("inv", 2, "h-22 fuel"))
        )
        assert result.cardinality == 2

    def test_field_eq_position_validation(self, domain):
        with pytest.raises(BadCallError):
            domain.execute(GroundCall("flatfile", "field_eq", ("inv", 0, "x")))

    def test_field_projection(self, domain):
        result = domain.execute(GroundCall("flatfile", "field", ("inv", 1)))
        assert result.answers == ("depot", "fob", "camp", "hq")

    def test_first_match_position_affects_t_first(self, domain):
        early = domain.execute(GroundCall("flatfile", "grep", ("inv", "depot")))
        late = domain.execute(GroundCall("flatfile", "grep", ("inv", "maps")))
        assert late.t_first_ms > early.t_first_ms

    def test_unknown_file(self, domain):
        with pytest.raises(BadCallError):
            domain.execute(GroundCall("flatfile", "lines", ("none",)))

    def test_duplicate_file_rejected(self, domain):
        with pytest.raises(BadCallError):
            domain.add_file("inv", [])

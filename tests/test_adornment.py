"""Adornment and executability dataflow tests."""

from repro.core.adornment import (
    adornment_of,
    call_adornment,
    is_binding_assignment,
    step,
    term_is_bound,
)
from repro.core.model import Comparison, make_in
from repro.core.terms import AttrPath, Constant, Variable

X, Y, T = Variable("X"), Variable("Y"), Variable("T")
NONE_BOUND = frozenset()


class TestTermIsBound:
    def test_constant_always(self):
        assert term_is_bound(Constant(1), NONE_BOUND)

    def test_variable_depends_on_set(self):
        assert not term_is_bound(X, NONE_BOUND)
        assert term_is_bound(X, frozenset({X}))

    def test_attrpath_follows_base(self):
        path = AttrPath(T, ("name",))
        assert not term_is_bound(path, NONE_BOUND)
        assert term_is_bound(path, frozenset({T}))


class TestStep:
    def test_call_needs_ground_args(self):
        atom = make_in(X, "d", "f", Y)
        assert step(atom, NONE_BOUND) is None
        after = step(atom, frozenset({Y}))
        assert after == frozenset({X, Y})

    def test_call_constant_args_ok(self):
        atom = make_in(X, "d", "f", 1, "a")
        after = step(atom, NONE_BOUND)
        assert after == frozenset({X})

    def test_ground_output_binds_nothing(self):
        atom = make_in(Constant(5), "d", "f")
        assert step(atom, NONE_BOUND) == NONE_BOUND

    def test_filter_needs_both_sides(self):
        comparison = Comparison("<", X, Constant(5))
        assert step(comparison, NONE_BOUND) is None
        assert step(comparison, frozenset({X})) == frozenset({X})

    def test_binding_equality(self):
        comparison = Comparison("=", X, Constant(5))
        assert step(comparison, NONE_BOUND) == frozenset({X})

    def test_binding_equality_reversed(self):
        comparison = Comparison("=", Constant(5), X)
        assert step(comparison, NONE_BOUND) == frozenset({X})

    def test_attrpath_binding(self):
        comparison = Comparison("=", AttrPath(T, ("name",)), X)
        assert step(comparison, NONE_BOUND) is None  # base unbound
        assert step(comparison, frozenset({T})) == frozenset({T, X})

    def test_non_eq_cannot_bind(self):
        comparison = Comparison("<", X, Constant(5))
        assert step(comparison, NONE_BOUND) is None

    def test_attrpath_target_cannot_be_bound(self):
        # =(bound, T.field) with T unbound: not executable (cannot invert)
        comparison = Comparison("=", Constant(1), AttrPath(T, (1,)))
        assert step(comparison, NONE_BOUND) is None


class TestIsBindingAssignment:
    def test_true_case(self):
        assert is_binding_assignment(Comparison("=", X, Constant(1)), NONE_BOUND)

    def test_filter_case(self):
        comparison = Comparison("=", X, Constant(1))
        assert not is_binding_assignment(comparison, frozenset({X}))

    def test_non_eq(self):
        assert not is_binding_assignment(Comparison("<", X, Constant(1)), NONE_BOUND)


class TestAdornmentStrings:
    def test_adornment_of(self):
        args = (Constant(1), X, Y)
        assert adornment_of(args, frozenset({X})) == "bbf"

    def test_call_adornment_includes_output(self):
        atom = make_in(X, "d", "f", Y)
        assert call_adornment(atom, frozenset({Y})) == "bf"
        assert call_adornment(atom, frozenset({X, Y})) == "bb"

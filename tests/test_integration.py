"""End-to-end lifecycle integration tests: several features interacting
over multi-source scenarios, the way a downstream user would drive them."""

from repro.cim.manager import CimPolicy
from repro.core.mediator import Mediator
from repro.core.views import ViewManager
from repro.dcsm.persistence import load_statistics, save_statistics
from repro.domains.base import simple_domain
from repro.workloads.datasets import (
    build_inventory_engine,
    build_logistics_terrain,
    build_rope_testbed,
)


class TestLogisticsLifecycle:
    """The §2 scenario driven through caching, invalidation, and views."""

    def make(self) -> Mediator:
        mediator = Mediator()
        mediator.register_domain(build_inventory_engine(), site="maryland")
        mediator.register_domain(build_logistics_terrain(), site="bucknell")
        mediator.load_program(
            """
            routetosupplies(From, Item, To, Cost) :-
                in(T, ingres:select_eq('inventory', 'item', Item)) &
                =(T.loc, To) &
                in(R, terraindb:findrte(From, To)) &
                =(R.cost, Cost).
            """
        )
        return mediator

    def test_warm_invalidate_rewarm(self):
        mediator = self.make()
        query = "?- routetosupplies(place1, 'h-22 fuel', To, Cost)."
        cold = mediator.query(query, use_cim=True)
        warm = mediator.query(query, use_cim=True)
        assert warm.t_all_ms < cold.t_all_ms / 20

        # the inventory changed: drop only the relational entries
        engine = mediator.registry.get("ingres").domain
        engine.table("inventory").insert(("h-22 fuel", "fob_delta", 10))
        dropped = mediator.notify_source_changed("ingres")
        assert dropped >= 1
        fresh = mediator.query(query, use_cim=True)
        assert fresh.cardinality == cold.cardinality + 1
        # routes for the previously known locations still hit the cache
        assert fresh.execution.provenance["cache"] >= 3

    def test_view_materializes_route_table(self):
        mediator = self.make()
        views = ViewManager(mediator)
        view = views.materialize(
            "fuel_routes", "?- routetosupplies(place1, 'h-22 fuel', To, Cost)."
        )
        assert view.cardinality == 3
        local = mediator.query("?- fuel_routes(To, Cost).")
        assert local.t_all_ms < 10.0
        cheapest = min(local.answers, key=lambda a: a[1])
        assert cheapest[0] == "airstrip"

    def test_statistics_survive_restart(self, tmp_path):
        first_session = self.make()
        first_session.query("?- routetosupplies(place1, ammo, To, Cost).")
        path = tmp_path / "stats.json"
        save_statistics(first_session.dcsm, path)

        second_session = self.make()
        load_statistics(second_session.dcsm, path)
        # the new session can price plans before running anything
        plans = second_session.plans(
            "?- routetosupplies(place1, ammo, To, Cost)."
        )
        estimate = second_session.cost_estimator.estimate(plans[0])
        assert estimate.vector.t_all_ms > 0


class TestRopeLifecycle:
    def test_interactive_session_then_full(self):
        mediator = build_rope_testbed()
        mediator.cim.policy = CimPolicy.PARTIAL_ONLY
        # warm with a narrow interval
        mediator.query("?- objects(4, 47, O).", use_cim=True)
        # interactive user peeks at the wider interval: partial, instant
        peek = mediator.query("?- objects(4, 200, O).", use_cim=True)
        assert not peek.complete
        assert peek.t_all_ms < 20.0
        # the user wants everything after all
        mediator.cim.policy = CimPolicy.SERIAL
        full = mediator.query("?- objects(4, 200, O).", use_cim=True)
        assert full.complete
        assert set(peek.answers) <= set(full.answers)

    def test_optimizer_improves_with_experience(self):
        mediator = build_rope_testbed()
        query = "?- query1(4, 47, Object, Size)."
        plans = mediator.plans(query)
        assert len(plans) == 2
        # run both orderings once (training)
        timings = {}
        for plan in plans:
            result = mediator.query(query, plan=plan)
            timings[plan.signature()] = result.t_all_ms
        # now the optimizer must pick the measured-faster ordering
        chosen = mediator.query(query)
        best_signature = min(timings, key=timings.get)
        assert chosen.chosen.signature() == best_signature

    def test_cursor_over_remote_join(self):
        mediator = build_rope_testbed(video_site="italy")
        with mediator.cursor("?- query3(4, 47, Object, Actor).") as cursor:
            first = cursor.fetch(2)
            assert len(first) == 2
            early_ms = cursor.elapsed_ms
            rest = cursor.fetch_all()
        assert len(first) + len(rest) == 6
        assert early_ms < cursor.elapsed_ms

    def test_union_vs_access_path_on_equivalent_rules(self):
        mediator = build_rope_testbed()
        # query3 and query4 are different predicates; make a predicate
        # with BOTH bodies as alternative rules
        mediator.load_program(
            """
            either(First, Last, Object, Actor) :- query3(First, Last, Object, Actor).
            either(First, Last, Object, Actor) :- query4(First, Last, Object, Actor).
            """
        )
        access_path = mediator.query("?- either(4, 47, O, A).")
        union = mediator.query(
            "?- either(4, 47, O, A).", semantics="union", deduplicate=True
        )
        # equivalent rules: dedup'd union equals the single branch
        assert sorted(set(access_path.answers)) == sorted(union.answers)


class TestMixedFeatureSession:
    def test_explain_validate_query_loop(self):
        from repro.core.explain import explain

        mediator = Mediator()
        mediator.register_domain(
            simple_domain("d", {"f": lambda: [1, 2, 3], "g": lambda x: [x * 2]})
        )
        mediator.load_program("p(X, Y) :- in(X, d:f()) & in(Y, d:g(X)).")
        assert mediator.validate_program() == []
        report = explain(mediator, "?- p(X, Y).")
        assert "candidate plan" in report
        result = mediator.query("?- p(X, Y).")
        assert result.cardinality == 3
        report_after = explain(mediator, "?- p(X, Y).")
        assert "<== chosen" in report_after  # statistics now price it

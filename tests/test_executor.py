"""Execution engine tests: streaming timing, membership, backtracking,
modes, statistics recording."""

import pytest

from repro.cim.manager import CacheInvariantManager
from repro.core.executor import Executor, MODE_INTERACTIVE
from repro.core.model import Comparison, make_in
from repro.core.plans import CallStep, CompareStep, Plan
from repro.core.terms import AttrPath, Constant, Variable
from repro.dcsm.module import DCSM
from repro.domains.base import simple_domain
from repro.domains.registry import DomainRegistry
from repro.net.clock import SimClock

X, Y, T = Variable("X"), Variable("Y"), Variable("T")


def make_executor(functions, base_cost_ms=10.0, **kwargs):
    domain = simple_domain("d", functions, base_cost_ms=base_cost_ms)
    registry = DomainRegistry([domain])
    clock = SimClock()
    executor = Executor(registry, clock, init_overhead_ms=0.0,
                        display_cost_ms=0.0, **kwargs)
    return executor, clock, domain


class TestBasicExecution:
    def test_single_call_plan(self):
        executor, _, _ = make_executor({"f": lambda: [1, 2, 3]})
        plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
        result = executor.run(plan)
        assert result.answers == ((1,), (2,), (3,))
        assert result.complete
        assert result.calls == 1

    def test_answers_keep_duplicates_across_branches(self):
        # two outer answers each joining the same inner value
        executor, _, _ = make_executor(
            {"outer": lambda: ["a", "b"], "inner": lambda o: [1]}
        )
        plan = Plan(
            (
                CallStep(make_in(X, "d", "outer")),
                CallStep(make_in(Y, "d", "inner", X)),
            ),
            (Y,),
        )
        result = executor.run(plan)
        assert result.answers == ((1,), (1,))

    def test_filter_comparison(self):
        executor, _, _ = make_executor({"f": lambda: [1, 5, 9]})
        plan = Plan(
            (
                CallStep(make_in(X, "d", "f")),
                CompareStep(Comparison(">", X, Constant(4))),
            ),
            (X,),
        )
        result = executor.run(plan)
        assert result.answers == ((5,), (9,))

    def test_binding_comparison(self):
        executor, _, _ = make_executor({"f": lambda y: [y * 2]})
        plan = Plan(
            (
                CompareStep(Comparison("=", Y, Constant(21))),
                CallStep(make_in(X, "d", "f", Y)),
            ),
            (X, Y),
        )
        result = executor.run(plan)
        assert result.answers == ((42, 21),)

    def test_attrpath_projection(self):
        from repro.core.terms import Row

        row = Row([("name", "stewart"), ("role", "rupert")])
        executor, _, _ = make_executor({"f": lambda: [row]})
        plan = Plan(
            (
                CallStep(make_in(T, "d", "f")),
                CompareStep(Comparison("=", AttrPath(T, ("name",)), X)),
            ),
            (X,),
        )
        result = executor.run(plan)
        assert result.answers == (("stewart",),)

    def test_membership_test_success(self):
        executor, _, _ = make_executor({"f": lambda: [1, 2, 3]})
        plan = Plan((CallStep(make_in(Constant(2), "d", "f")),), ())
        result = executor.run(plan)
        assert result.cardinality == 1  # one (empty) answer: proof of membership

    def test_membership_test_failure(self):
        executor, _, _ = make_executor({"f": lambda: [1, 2, 3]})
        plan = Plan((CallStep(make_in(Constant(9), "d", "f")),), ())
        result = executor.run(plan)
        assert result.cardinality == 0

    def test_empty_answer_set_prunes_branch(self):
        executor, _, _ = make_executor(
            {"outer": lambda: [], "inner": lambda o: [1]}
        )
        plan = Plan(
            (
                CallStep(make_in(X, "d", "outer")),
                CallStep(make_in(Y, "d", "inner", X)),
            ),
            (Y,),
        )
        result = executor.run(plan)
        assert result.answers == ()
        assert result.calls == 1  # inner never ran


class TestTiming:
    def test_time_charged_for_whole_stream(self):
        executor, clock, _ = make_executor(
            {"f": lambda: ([1, 2, 3], 10.0, 40.0)}
        )
        plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
        result = executor.run(plan)
        assert result.t_all_ms == pytest.approx(40.0)
        assert result.t_first_ms == pytest.approx(10.0)

    def test_empty_result_still_costs(self):
        executor, clock, _ = make_executor({"f": lambda: ([], 5.0, 5.0)})
        plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
        result = executor.run(plan)
        assert result.t_all_ms == pytest.approx(5.0)
        assert result.t_first_ms is None

    def test_first_answer_time_includes_backtracking(self):
        """Outer answers that fail inner join delay the query's first
        answer — the §8 backtracking effect."""
        executor, _, _ = make_executor(
            {
                "outer": lambda: (["dead1", "dead2", "live"], 1.0, 3.0),
                "inner": lambda o: ([1] if o == "live" else [], 50.0, 50.0),
            }
        )
        plan = Plan(
            (
                CallStep(make_in(X, "d", "outer")),
                CallStep(make_in(Y, "d", "inner", X)),
            ),
            (X, Y),
        )
        result = executor.run(plan)
        # two dead inner calls (50ms each) happen before the first answer
        assert result.t_first_ms > 100.0

    def test_init_overhead_and_display_cost(self):
        domain = simple_domain("d", {"f": lambda: ([1, 2], 1.0, 1.0)})
        registry = DomainRegistry([domain])
        clock = SimClock()
        executor = Executor(
            registry, clock, init_overhead_ms=100.0, display_cost_ms=10.0
        )
        plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
        result = executor.run(plan)
        assert result.t_all_ms >= 100.0 + 1.0 + 2 * 10.0

    def test_single_answer_full_duration(self):
        executor, _, _ = make_executor({"f": lambda: ([7], 2.0, 30.0)})
        plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
        result = executor.run(plan)
        assert result.t_all_ms == pytest.approx(30.0)
        assert result.t_first_ms == pytest.approx(2.0)


class TestModes:
    def test_max_answers_stops_early(self):
        executor, _, _ = make_executor({"f": lambda: list(range(100))})
        plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
        result = executor.run(plan, max_answers=5)
        assert result.cardinality == 5
        assert not result.complete

    def test_early_stop_saves_simulated_time(self):
        executor, clock, _ = make_executor(
            {"f": lambda: (list(range(100)), 1.0, 1000.0)}
        )
        plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
        result = executor.run(plan, max_answers=2)
        assert result.t_all_ms < 100.0  # nowhere near the 1000ms full cost

    def test_interactive_callback_stops(self):
        executor, _, _ = make_executor({"f": lambda: list(range(50))})
        plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
        seen_batches = []

        def decide(batch, total):
            seen_batches.append(list(batch))
            return total < 20

        result = executor.run(
            plan, mode=MODE_INTERACTIVE, batch_size=10, continue_callback=decide
        )
        assert not result.complete
        assert result.cardinality == 20
        assert len(seen_batches) == 2

    def test_interactive_without_callback_runs_to_end(self):
        executor, _, _ = make_executor({"f": lambda: list(range(25))})
        plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
        result = executor.run(plan, mode=MODE_INTERACTIVE, batch_size=10)
        assert result.complete
        assert result.cardinality == 25

    def test_unknown_mode_rejected(self):
        executor, _, _ = make_executor({"f": lambda: [1]})
        plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
        with pytest.raises(Exception):
            executor.run(plan, mode="bogus")


class TestStatisticsRecording:
    def test_dcsm_records_real_calls(self):
        domain = simple_domain("d", {"f": lambda: [1, 2]})
        registry = DomainRegistry([domain])
        clock = SimClock()
        dcsm = DCSM(clock=clock)
        executor = Executor(registry, clock, dcsm=dcsm,
                            init_overhead_ms=0.0, display_cost_ms=0.0)
        plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
        executor.run(plan)
        assert dcsm.observation_count() == 1

    def test_recording_disabled(self):
        domain = simple_domain("d", {"f": lambda: [1]})
        registry = DomainRegistry([domain])
        clock = SimClock()
        dcsm = DCSM(clock=clock)
        executor = Executor(registry, clock, dcsm=dcsm, record_statistics=False,
                            init_overhead_ms=0.0, display_cost_ms=0.0)
        plan = Plan((CallStep(make_in(X, "d", "f")),), (X,))
        executor.run(plan)
        assert dcsm.observation_count() == 0

    def test_cim_routed_calls_hit_cache_second_time(self):
        domain = simple_domain("d", {"f": lambda: ([1, 2], 10.0, 100.0)})
        registry = DomainRegistry([domain])
        clock = SimClock()
        cim = CacheInvariantManager(registry, clock)
        executor = Executor(registry, clock, cim=cim,
                            init_overhead_ms=0.0, display_cost_ms=0.0)
        plan = Plan((CallStep(make_in(X, "d", "f"), via_cim=True),), (X,))
        first = executor.run(plan)
        second = executor.run(plan)
        assert second.t_all_ms < first.t_all_ms / 10
        assert second.provenance["cache"] == 1

"""Unit tests: breaker state machine, latency windows, error
classification, avoid-set planning, hedging, and plan repair."""

from __future__ import annotations

import pytest

from repro.core.mediator import Mediator
from repro.core.parser import parse_query
from repro.domains.base import simple_domain
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ErrorClass,
    ExecutionCancelledError,
    PermanentSourceError,
    PlanningError,
    ReproError,
    RetryExhaustedError,
    SourceTimeoutError,
    SourceUnavailableError,
    TransientSourceError,
    classify,
    is_terminal_source_error,
)
from repro.net.health import (
    BreakerState,
    HealthPolicy,
    HealthRegistry,
    HedgePolicy,
    SourceHealth,
)

POLICY = HealthPolicy(
    window_size=8,
    min_samples=4,
    error_rate_threshold=0.5,
    consecutive_failure_threshold=3,
    cooldown_ms=100.0,
)


class TestHealthPolicy:
    def test_validation(self):
        with pytest.raises(ReproError):
            HealthPolicy(window_size=0)
        with pytest.raises(ReproError):
            HealthPolicy(min_samples=0)
        with pytest.raises(ReproError):
            HealthPolicy(error_rate_threshold=0.0)
        with pytest.raises(ReproError):
            HealthPolicy(error_rate_threshold=1.5)
        with pytest.raises(ReproError):
            HealthPolicy(consecutive_failure_threshold=0)
        with pytest.raises(ReproError):
            HealthPolicy(cooldown_ms=-1)
        with pytest.raises(ReproError):
            HedgePolicy(quantile=1.0)
        with pytest.raises(ReproError):
            HedgePolicy(min_samples=0)


class TestBreaker:
    def test_trips_on_consecutive_failures(self):
        health = SourceHealth("d", "cornell", POLICY)
        assert not health.record_failure(0.0)
        assert not health.record_failure(1.0)
        assert health.record_failure(2.0)  # third consecutive opens
        assert health.state is BreakerState.OPEN

    def test_trips_on_windowed_error_rate(self):
        health = SourceHealth("d", "cornell", POLICY)
        # alternate so consecutive never reaches 3, but the window is
        # half errors once min_samples is met
        health.record_success(0.0, 10.0)
        health.record_failure(1.0)
        health.record_success(2.0, 10.0)
        opened = health.record_failure(3.0)
        assert opened and health.state is BreakerState.OPEN
        assert health.error_rate() == pytest.approx(0.5)

    def test_open_refuses_dials_until_cooldown(self):
        health = SourceHealth("d", "cornell", POLICY)
        for i in range(3):
            health.record_failure(float(i))
        with pytest.raises(CircuitOpenError) as excinfo:
            health.before_dial(50.0)
        assert excinfo.value.until_ms == pytest.approx(102.0)
        assert health.fast_failures == 1
        # cooldown elapsed: the next dial is the half-open probe
        health.before_dial(102.0)
        assert health.state is BreakerState.HALF_OPEN

    def test_half_open_admits_one_probe(self):
        health = SourceHealth("d", "cornell", POLICY)
        for i in range(3):
            health.record_failure(float(i))
        health.before_dial(200.0)  # the probe
        with pytest.raises(CircuitOpenError):
            health.before_dial(200.0)  # a second concurrent dial

    def test_probe_success_closes(self):
        health = SourceHealth("d", "cornell", POLICY)
        for i in range(3):
            health.record_failure(float(i))
        health.before_dial(200.0)
        assert health.record_success(210.0, 10.0)
        assert health.state is BreakerState.CLOSED
        assert health.closes == 1
        # the poisoned window was cleared: one more failure won't trip
        # via error rate
        assert not health.record_failure(220.0)

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        health = SourceHealth("d", "cornell", POLICY)
        for i in range(3):
            health.record_failure(float(i))
        health.before_dial(200.0)
        assert health.record_failure(210.0)
        assert health.state is BreakerState.OPEN
        assert health.opens == 2
        with pytest.raises(CircuitOpenError) as excinfo:
            health.before_dial(300.0)  # only 90ms into the new cooldown
        assert excinfo.value.until_ms == pytest.approx(310.0)


class TestWindows:
    def test_latency_quantile_nearest_rank(self):
        health = SourceHealth("d", "", HealthPolicy(window_size=16))
        for latency in (10.0, 20.0, 30.0, 40.0):
            health.record_success(0.0, latency)
        assert health.latency_quantile(0.5) == 30.0
        assert health.latency_quantile(0.95) == 40.0
        empty = SourceHealth("e", "", POLICY)
        assert empty.latency_quantile(0.5) is None

    def test_window_evicts_old_outcomes(self):
        health = SourceHealth("d", "", HealthPolicy(window_size=4))
        for i in range(4):
            health.record_failure(float(i))  # trips at 3
        for i in range(8):
            health.record_success(10.0 + i, 5.0)
        assert health.error_rate() == 0.0
        assert health.samples == 4

    def test_registry_hedge_threshold_needs_samples(self):
        registry = HealthRegistry(POLICY)
        registry.bind("d", "cornell")
        hedge = HedgePolicy(quantile=0.5, min_samples=3)
        assert registry.hedge_threshold_ms("d", hedge) is None
        for latency in (10.0, 20.0, 30.0):
            registry.record_success("d", 0.0, latency)
        assert registry.hedge_threshold_ms("d", hedge) == 20.0
        assert registry.hedge_threshold_ms("unknown", hedge) is None

    def test_registry_render_and_snapshot(self):
        registry = HealthRegistry(POLICY)
        registry.bind("d", "cornell")
        registry.record_success("d", 0.0, 12.0)
        [row] = registry.snapshot()
        assert row["domain"] == "d" and row["state"] == "closed"
        assert row["p50_ms"] == 12.0
        text = registry.render()
        assert "d @ cornell: closed" in text
        assert HealthRegistry(POLICY).render() == "health: no sources tracked"


class TestClassify:
    """The single shared exception-classification ladder (repro.errors)."""

    def test_ladder(self):
        cases = [
            (CircuitOpenError("d"), ErrorClass.CIRCUIT_OPEN),
            (SourceUnavailableError("d"), ErrorClass.OUTAGE),
            (TransientSourceError("d"), ErrorClass.TRANSIENT),
            (SourceTimeoutError("d"), ErrorClass.TRANSIENT),
            (PermanentSourceError("d"), ErrorClass.PERMANENT),
            (RetryExhaustedError(3), ErrorClass.EXHAUSTED),
            (DeadlineExceededError(100, 120), ErrorClass.EXHAUSTED),
            (ExecutionCancelledError("stop"), ErrorClass.CANCELLED),
            (ReproError("other"), ErrorClass.OTHER),
            (ValueError("not ours"), ErrorClass.OTHER),
        ]
        for error, expected in cases:
            assert classify(error) is expected, error

    def test_terminal_source_errors(self):
        assert is_terminal_source_error(CircuitOpenError("d"))
        assert is_terminal_source_error(SourceUnavailableError("d"))
        assert is_terminal_source_error(PermanentSourceError("d"))
        assert is_terminal_source_error(RetryExhaustedError(2))
        assert not is_terminal_source_error(TransientSourceError("d"))
        assert not is_terminal_source_error(ExecutionCancelledError("x"))


def _two_route_mediator(**kwargs) -> Mediator:
    """r served by two domains (alpha, beta) with identical answers."""
    mediator = Mediator(**kwargs)
    mediator.register_domain(
        simple_domain("alpha", {"r": lambda v: [f"{v}.a"]}), site="cornell"
    )
    mediator.register_domain(
        simple_domain("beta", {"r": lambda v: [f"{v}.a"]}), site="bucknell"
    )
    mediator.load_program(
        """
        q(A, B) :- in(B, alpha:r(A)).
        q(A, B) :- in(B, beta:r(A)).
        """
    )
    return mediator


class TestAvoidDomains:
    def test_plans_filter_avoided_domain(self):
        mediator = _two_route_mediator()
        rewriter = mediator.rewriter
        query = parse_query("?- q('s', B).")
        all_plans = rewriter.plans(query)
        assert len(all_plans) == 2
        avoiding = rewriter.plans(query, avoid_domains=frozenset({"alpha"}))
        assert len(avoiding) == 1
        domains = {
            step.call.domain
            for plan in avoiding
            for step in plan.steps
            if hasattr(step, "call")
        }
        assert "alpha" not in domains

    def test_all_routes_avoided_is_planning_error(self):
        mediator = _two_route_mediator()
        query = parse_query("?- q('s', B).")
        with pytest.raises(PlanningError):
            mediator.rewriter.plans(
                query, avoid_domains=frozenset({"alpha", "beta"})
            )

    def test_mediator_plan_avoiding(self):
        mediator = _two_route_mediator()
        plan = mediator.plan_avoiding("?- q('s', B).", frozenset({"alpha"}))
        assert "beta" in str(plan)


class TestRepair:
    def test_repair_via_cim_when_no_alternate_rule(self):
        """Replan cannot avoid the only route; the CIM re-route serves
        the cached answers and the result is repaired, not partial."""
        calls = {"n": 0, "down": False}

        def impl(v):
            calls["n"] += 1
            if calls["down"]:
                raise SourceUnavailableError("solo", site="cornell")
            return [f"{v}.x"]

        mediator = Mediator(health_policy=HealthPolicy(), repair=True)
        # stale-degradation (PR 1) would answer in place before repair
        # ever runs; turn it off so the CIM re-route path is exercised
        mediator.executor.degrade_on_failure = False
        mediator.register_domain(
            simple_domain("solo", {"r": impl}), site="cornell"
        )
        mediator.load_program("q(A, B) :- in(B, solo:r(A)).")
        warm = mediator.query("?- q('s', B).", use_cim=True)  # populate CIM
        calls["down"] = True
        repaired = mediator.query("?- q('s', B).")
        assert repaired.completeness.status == "repaired"
        assert repaired.completeness.repaired_via == "cim"
        assert sorted(repaired.answers) == sorted(warm.answers)
        assert mediator.metrics.value("health.repair_cim_reroutes") == 1.0

    def test_repair_metrics_and_annotation_on_partial(self):
        mediator = Mediator(health_policy=HealthPolicy(), repair=True)

        def impl(v):
            raise SourceUnavailableError("solo", site="cornell")

        mediator.register_domain(
            simple_domain("solo", {"r": impl}), site="cornell"
        )
        mediator.load_program("q(A, B) :- in(B, solo:r(A)).")
        result = mediator.query("?- q('s', B).")
        assert result.completeness.is_partial
        assert result.missing_sources == frozenset({"solo"})
        assert "partial (missing_sources=[solo])" in str(result)
        assert mediator.metrics.value("health.partial_results") == 1.0
        assert mediator.metrics.value("mediator.partial_queries") == 1.0

    def test_completeness_str(self):
        from repro.runtime.repair import Completeness

        assert str(Completeness()) == "complete"
        assert (
            str(Completeness(status="repaired", repair_attempts=2, repaired_via="cim"))
            == "repaired via cim after 2 attempt(s)"
        )
        assert (
            str(Completeness(status="partial", missing_sources=frozenset({"b", "a"})))
            == "partial (missing_sources=[a, b])"
        )


class TestHedging:
    def test_hedge_wins_against_latency_spike(self):
        """A bimodal source: every 5th call stalls.  Once the latency
        window is warm, the stalled primary is hedged and the fast
        duplicate's timeline wins."""
        calls = {"n": 0}

        def impl(v):
            calls["n"] += 1
            slow = calls["n"] % 5 == 0
            return ([f"{v}.x"], 2_000.0, 2_000.0) if slow else ([f"{v}.x"], 10.0, 10.0)

        mediator = Mediator(
            health_policy=HealthPolicy(),
            hedge_policy=HedgePolicy(quantile=0.5, min_samples=4),
        )
        mediator.register_domain(
            simple_domain("bi", {"r": impl}), site="maryland"
        )
        mediator.load_program("q(A, B) :- in(B, bi:r(A)).")
        durations = []
        for i in range(10):
            result = mediator.query(f"?- q('s{i}', B).")
            durations.append(result.t_all_ms)
        assert mediator.metrics.value("health.hedges") >= 1.0
        assert mediator.metrics.value("health.hedge_wins") >= 1.0
        assert mediator.metrics.value("mediator.hedged_queries") >= 1.0
        # the slow mode never reaches the user once hedging is warm
        assert max(durations) < 2_000.0

    def test_no_hedge_below_threshold(self):
        mediator = Mediator(
            health_policy=HealthPolicy(),
            hedge_policy=HedgePolicy(quantile=0.5, min_samples=4),
        )
        mediator.register_domain(
            simple_domain("flat", {"r": lambda v: ([f"{v}.x"], 10.0, 10.0)}),
            site="maryland",
        )
        mediator.load_program("q(A, B) :- in(B, flat:r(A)).")
        for i in range(8):
            mediator.query(f"?- q('s{i}', B).")
        assert mediator.metrics.value("health.hedges") == 0.0
